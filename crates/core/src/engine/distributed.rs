//! The distributed substrate: real RPC workers behind the envelope
//! protocol.
//!
//! This is the paper's deployment made literal — no simulated runtime,
//! actual processes, actual sockets, actual serialised bytes:
//!
//! * [`DistributedEngine`] (the **coordinator**) range-partitions the
//!   graph with the same [`Partitioner`] the sharded engine proved,
//!   ships the partitions to `pasco worker` processes over TCP, routes
//!   the offline walk phase and every query to the worker owning its
//!   source, and finishes top-`k` with the sharded engine's k-way merge
//!   (`merge_ranked`).
//! * [`ShardWorkerCore`] (the **worker half**, hosted by the
//!   `pasco_worker` crate's TCP shell) assembles the shipped partitions
//!   into the same [`PartitionedView`] the sharded engine walks, and
//!   answers build/query/top-k requests by running the *identical*
//!   generic kernels ([`reverse_walk_distributions_on`],
//!   [`single_source_from_dists_on`], `topk_lists`).
//!
//! ## Work partitions; adjacency replicates
//!
//! Walkers wander across partition boundaries, so every worker holds the
//! full partition set (the broadcast side of CloudWalker's design) while
//! *work* — rows built, cohorts simulated, queries answered — belongs
//! exclusively to the owner of the source node (the partition-by-source
//! side). Per-worker compute shrinks as `1/workers`; resident adjacency
//! does not. Per-step walker shuffling (the RDD model over real sockets)
//! is the road not taken here: it trades that memory for a network round
//! trip per walk step, which the simulated [`super::rdd`] engine already
//! quantifies as orders of magnitude more shuffle traffic.
//!
//! ## Bit-identity
//!
//! The offline build walks on workers and solves on the coordinator: the
//! walk phase (the `O(n·R·T)` term that dominates) distributes, the `L`
//! Jacobi sweeps (cheap, `O(nnz)` each) run over the assembled rows
//! through the very same [`jacobi::solve`] call as every other engine.
//! Since each walk step's randomness is a pure function of
//! `(seed, source, walker, step)` and workers execute the shared
//! kernels over a view that answers adjacency exactly like the resident
//! graph, every result — index, MCSP, dense MCSS, top-`k`, cohorts — is
//! **bit-identical** to Local and Sharded at every worker count
//! (`tests/distributed.rs` proves it over real loopback TCP).
//!
//! ## Accounting and failure
//!
//! The cluster accounting here records *real* encoded frame sizes and
//! measured transfer times, not the simulated estimates of the
//! broadcast/RDD engines ([`SimRankEngine::cluster_report`] parity), and
//! [`SimRankEngine::worker_stats`] polls live [`WorkerStats`] off each
//! worker. A faulted link retries its request once over a fresh
//! connection — worker state survives *connection* loss, so a network
//! blip heals transparently — and a worker that is truly gone surfaces
//! as [`QueryError::WorkerUnavailable`] (build faults wrap it in
//! [`SimRankError::Query`]): no hang, no panic, queries routed to
//! surviving workers keep answering, and a worker that *restarted*
//! empty keeps failing typed ("partition set not loaded") until the
//! engine is rebuilt to re-provision it.

use crate::ai::ai_row;
use crate::api::envelope::{Envelope, FrameKind, ServerInfo, DEFAULT_MAX_FRAME};
use crate::api::transport::{read_envelope, write_envelope};
use crate::api::wire::WireCodec;
use crate::api::worker::{
    diag_fingerprint, BuildShard, BuildShardReply, DiagPayload, Empty, LoadAck, LoadPartition,
    LoadStore, ShardQuery, ShardQueryKind, ShardTopK, ShardTopKReply, WorkerStats,
};
use crate::api::{check_node, QueryError, QueryResponse};
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::sharded::{merge_ranked, topk_lists};
use crate::engine::{BuildOutcome, EngineFootprint, SimRankEngine};
use crate::error::SimRankError;
use crate::queries::{query_seed, score_pair, single_source_from_dists_on};
use pasco_cluster::metrics::{MetricsLog, ShuffleMetrics, StageMetrics};
use pasco_cluster::ClusterReport;
use pasco_graph::adjacency::{ForwardSampler, WalkAdjacency};
use pasco_graph::partition::Partitioner;
use pasco_graph::partitioned::{partition_graph, GraphPartition, PartitionedView};
use pasco_graph::{CsrGraph, NodeId};
use pasco_mc::walks::{reverse_walk_distributions_on, StepDistributions, WalkParams};
use pasco_solver::jacobi::{self, JacobiConfig, RowSource};
use pasco_store::MappedStore;
use rayon::prelude::*;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One sparse row of the linear system, sorted by column.
type Row = Vec<(u32, f64)>;

// ====================================================================
// Worker half
// ====================================================================

/// The adjacency substrate a worker serves from: partitions shipped
/// over the wire and resident in anonymous memory, or a shard store
/// mapped in place from the worker's filesystem. Both route lookups
/// through the identical [`Partitioner::range`], and both feed the same
/// generic kernels, so a worker answers bit-identically either way —
/// the provisioning path is the only difference.
#[derive(Debug)]
enum WorkerView {
    /// Partitions received as [`LoadPartition`] frames.
    Resident(PartitionedView),
    /// A store directory mapped by a [`LoadStore`] frame.
    Mapped(Arc<MappedStore>),
}

impl WorkerView {
    fn partitioner(&self) -> Partitioner {
        match self {
            WorkerView::Resident(view) => view.partitioner(),
            WorkerView::Mapped(store) => store.partitioner(),
        }
    }
}

impl WalkAdjacency for WorkerView {
    #[inline]
    fn node_count(&self) -> u32 {
        match self {
            WorkerView::Resident(view) => view.node_count(),
            WorkerView::Mapped(store) => store.node_count(),
        }
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        match self {
            WorkerView::Resident(view) => view.in_neighbors(v),
            WorkerView::Mapped(store) => store.in_neighbors(v),
        }
    }
}

impl ForwardSampler for WorkerView {
    #[inline]
    fn outflow(&self, v: NodeId) -> f64 {
        match self {
            WorkerView::Resident(view) => view.outflow(v),
            WorkerView::Mapped(store) => ForwardSampler::outflow(&**store, v),
        }
    }

    #[inline]
    fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        match self {
            WorkerView::Resident(view) => view.sample_out(v, r),
            WorkerView::Mapped(store) => ForwardSampler::sample_out(&**store, v, r),
        }
    }
}

/// The worker-side compute core: everything a SimRank worker does
/// between frames, with the transport stripped away (the `pasco_worker`
/// crate wraps this in a TCP loop; tests drive it directly).
///
/// Lifecycle: constructed empty, then provisioned one of two ways —
/// fed [`LoadPartition`] messages until the full partition set is
/// resident (the view assembles on the last one), or handed a store
/// directory in one [`LoadStore`] message — after which it serves
/// builds and routed queries for its owned partition.
#[derive(Debug, Default)]
pub struct ShardWorkerCore {
    /// Partition frames received so far, indexed by partition.
    pending: Vec<Option<GraphPartition>>,
    /// Set by the first load frame: `(n, parts, owned)`.
    shape: Option<(u32, u32, u32)>,
    /// The assembled routed view, once every partition arrived.
    view: Option<WorkerView>,
    /// The diagonal last shipped to this worker, keyed by fingerprint.
    diag: Option<(u64, Vec<f64>)>,
    builds: u64,
    queries: u64,
    topk_queries: u64,
}

impl ShardWorkerCore {
    /// An empty worker awaiting its partition set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Node count of the (announced) graph; 0 before the first load.
    pub fn node_count(&self) -> u32 {
        self.shape.map_or(0, |(n, _, _)| n)
    }

    /// True once every announced partition is resident and queries can
    /// be served.
    pub fn ready(&self) -> bool {
        self.view.is_some()
    }

    fn not_ready(&self, what: &str) -> QueryError {
        QueryError::WorkerUnavailable {
            detail: format!(
                "{what} before the partition set finished loading ({}/{} partitions resident)",
                self.pending.iter().flatten().count(),
                self.shape.map_or(0, |(_, parts, _)| parts),
            ),
        }
    }

    /// Accepts one [`LoadPartition`] frame. The first frame fixes the
    /// graph shape; every frame is validated against the range
    /// partitioner so a coordinator/worker disagreement is a typed error
    /// at load time, not a wrong answer at query time.
    ///
    /// A load frame arriving on an already-ready core starts a *fresh*
    /// provisioning round (a new coordinator — or the same one on its
    /// next CLI invocation — re-ships partitions): the old view,
    /// pending set, and diagonal cache are dropped, the serving
    /// counters survive.
    pub fn load_partition(&mut self, msg: LoadPartition) -> Result<LoadAck, QueryError> {
        if self.view.is_some() {
            self.view = None;
            self.shape = None;
            self.pending.clear();
            self.diag = None;
        }
        let invalid = |detail: String| QueryError::WorkerUnavailable { detail };
        if msg.parts == 0 || msg.n == 0 {
            return Err(invalid("empty partition set announced".into()));
        }
        if msg.part_index >= msg.parts || msg.owned_part >= msg.parts {
            return Err(invalid(format!(
                "partition index {} / owned {} out of range for {} parts",
                msg.part_index, msg.owned_part, msg.parts
            )));
        }
        match self.shape {
            None => {
                self.shape = Some((msg.n, msg.parts, msg.owned_part));
                self.pending = (0..msg.parts).map(|_| None).collect();
            }
            Some(shape) if shape != (msg.n, msg.parts, msg.owned_part) => {
                return Err(invalid(format!(
                    "load frame shape ({}, {}, {}) contradicts the announced {:?}",
                    msg.n, msg.parts, msg.owned_part, shape
                )));
            }
            Some(_) => {}
        }
        let partitioner = Partitioner::range(msg.n, msg.parts);
        // `part_index >= parts` was rejected above, and a range
        // partitioner has a range for every index below `parts`.
        // pasco-lint: allow(panic-reachable-in-serving)
        let expect = partitioner.range_of(msg.part_index).expect("range partitioner");
        if (msg.partition.start, msg.partition.end) != expect {
            return Err(invalid(format!(
                "partition {} covers [{}, {}) but the range partitioner assigns {:?}",
                msg.part_index, msg.partition.start, msg.partition.end, expect
            )));
        }
        self.pending[msg.part_index as usize] = Some(msg.partition);
        let loaded = self.pending.iter().flatten().count() as u32;
        if loaded == msg.parts {
            // `loaded == parts` counted exactly the occupied entries of
            // `pending`, so `flatten` drains every slot.
            let parts: Vec<GraphPartition> = self.pending.drain(..).flatten().collect();
            self.view =
                Some(WorkerView::Resident(PartitionedView::new(Arc::new(parts), partitioner)));
        }
        Ok(LoadAck { resident_bytes: self.resident_bytes(), loaded })
    }

    /// Accepts one [`LoadStore`] frame: maps the named store directory
    /// in place and becomes query-ready in a single exchange. The
    /// store's own validation (headers against file sizes, shard set
    /// against the range partitioner) is the shape check here, and its
    /// on-disk diagonal slice is composed and installed in the
    /// fingerprint cache — so neither the `O(E)` adjacency nor the
    /// `O(n)` diagonal ever crosses the wire.
    ///
    /// Like [`ShardWorkerCore::load_partition`], arriving on an
    /// already-ready core starts a fresh provisioning round.
    pub fn load_store(&mut self, msg: LoadStore) -> Result<LoadAck, QueryError> {
        let invalid = |detail: String| QueryError::WorkerUnavailable { detail };
        let store =
            MappedStore::open(&msg.dir).map_err(|e| invalid(format!("store {}: {e}", msg.dir)))?;
        let (n, parts) = (store.node_count(), store.parts());
        if n == 0 {
            return Err(invalid(format!("store {} holds an empty graph", msg.dir)));
        }
        if msg.owned_part >= parts {
            return Err(invalid(format!(
                "owned partition {} out of range for a {parts}-shard store",
                msg.owned_part
            )));
        }
        let diag = store.compose_diag();
        self.view = None;
        self.pending.clear();
        self.shape = Some((n, parts, msg.owned_part));
        self.diag = Some((diag_fingerprint(&diag), diag));
        let resident_bytes = store.mapped_bytes();
        self.view = Some(WorkerView::Mapped(Arc::new(store)));
        Ok(LoadAck { resident_bytes, loaded: parts })
    }

    fn resident_bytes(&self) -> u64 {
        match &self.view {
            Some(WorkerView::Resident(view)) => {
                view.partitions().iter().map(GraphPartition::memory_bytes).sum()
            }
            // Mapped bytes, not resident ones — pages materialise lazily.
            Some(WorkerView::Mapped(store)) => store.mapped_bytes(),
            None => self.pending.iter().flatten().map(GraphPartition::memory_bytes).sum(),
        }
    }

    fn owned_range(&self) -> Result<(u32, u32), QueryError> {
        let Some((n, parts, owned)) = self.shape else {
            return Err(self.not_ready("owned range requested"));
        };
        // `owned >= parts` is rejected at load time, and a range
        // partitioner has a range for every index below `parts`.
        // pasco-lint: allow(panic-reachable-in-serving)
        Ok(Partitioner::range(n, parts).range_of(owned).expect("range partitioner"))
    }

    /// The shard-local offline build: one `R`-walker cohort and one
    /// [`ai_row`] per owned source, walked through the routed view by
    /// the same kernel every engine uses — rayon-parallel over sources.
    pub fn build(&mut self, cfg: &SimRankConfig) -> Result<BuildShardReply, QueryError> {
        let Some(view) = &self.view else {
            return Err(self.not_ready("build requested"));
        };
        let (start, end) = self.owned_range()?;
        let params = WalkParams::new(cfg.t, cfg.r);
        let rows: Vec<Row> = (start..end)
            .into_par_iter()
            .map(|i| ai_row(&reverse_walk_distributions_on(view, i, params, cfg.seed), cfg.c))
            .collect();
        self.builds += 1;
        Ok(BuildShardReply { rows })
    }

    /// Installs a shipped diagonal and checks the requested fingerprint
    /// is resident. Split from [`ShardWorkerCore::cached_diag`] (the
    /// immutable re-borrow) so the hot query path never copies the
    /// `O(n)` vector just to appease the borrow checker.
    fn resolve_diag(&mut self, payload: DiagPayload) -> Result<(), QueryError> {
        if let Some(values) = payload.values {
            let fp = diag_fingerprint(&values);
            if fp != payload.fingerprint {
                return Err(QueryError::WorkerUnavailable {
                    detail: "shipped diagonal does not match its fingerprint".into(),
                });
            }
            self.diag = Some((fp, values));
        }
        match &self.diag {
            Some((fp, _)) if *fp == payload.fingerprint => Ok(()),
            _ => Err(QueryError::WorkerUnavailable {
                detail: format!(
                    "diagonal {:#018x} is not cached on this worker; re-ship it",
                    payload.fingerprint
                ),
            }),
        }
    }

    /// The diagonal a successful [`ShardWorkerCore::resolve_diag`] left
    /// resident.
    fn cached_diag(&self) -> Result<&[f64], QueryError> {
        match &self.diag {
            Some((_, values)) => Ok(values),
            None => Err(QueryError::WorkerUnavailable {
                detail: "query routed before its diagonal was resolved".into(),
            }),
        }
    }

    /// The routed view as a typed error when loading has not finished.
    /// Re-borrowed per use: [`ShardWorkerCore::resolve_diag`] takes
    /// `&mut self`, so a view borrow cannot live across it.
    fn routed_view(&self) -> Result<&WorkerView, QueryError> {
        self.view.as_ref().ok_or_else(|| self.not_ready("query routed"))
    }

    /// Answers one routed [`ShardQuery`]: MCSP, dense MCSS, or a raw
    /// cohort — raw (unclamped) estimates, exactly what the in-process
    /// engines return at this layer.
    pub fn query(&mut self, msg: ShardQuery) -> Result<QueryResponse, QueryError> {
        if self.view.is_none() {
            return Err(self.not_ready("query routed"));
        }
        let cfg = msg.cfg;
        let n = self.node_count();
        let params = WalkParams::new(cfg.t, cfg.r_query);
        let seed = query_seed(&cfg);
        let resp = match msg.kind {
            ShardQueryKind::SinglePair { i, j } => {
                check_node(i, n)?;
                check_node(j, n)?;
                self.resolve_diag(msg.diag)?;
                let diag = self.cached_diag()?;
                let view = self.routed_view()?;
                if i == j {
                    QueryResponse::Score(1.0)
                } else {
                    let di = reverse_walk_distributions_on(view, i, params, seed);
                    let dj = reverse_walk_distributions_on(view, j, params, seed);
                    QueryResponse::Score(score_pair(&di, &dj, diag, cfg.c))
                }
            }
            ShardQueryKind::SingleSource { i } => {
                check_node(i, n)?;
                self.resolve_diag(msg.diag)?;
                let diag = self.cached_diag()?;
                let view = self.routed_view()?;
                let dists = reverse_walk_distributions_on(view, i, params, seed);
                QueryResponse::Scores(single_source_from_dists_on(
                    n as usize, view, &dists, diag, &cfg,
                ))
            }
            // Cohorts are score-free: the diagonal payload is ignored
            // (the coordinator sends a placeholder and leaves its
            // per-link cache state untouched).
            ShardQueryKind::Cohort { v } => {
                check_node(v, n)?;
                let view = self.routed_view()?;
                QueryResponse::Cohort(reverse_walk_distributions_on(view, v, params, seed))
            }
        };
        self.queries += 1;
        Ok(resp)
    }

    /// Answers one [`ShardTopK`]: the owning worker's half of the
    /// distributed top-`k` plan — per-partition rankings out, the
    /// coordinator merges.
    pub fn topk(&mut self, msg: ShardTopK) -> Result<ShardTopKReply, QueryError> {
        if self.view.is_none() {
            return Err(self.not_ready("top-k routed"));
        }
        check_node(msg.i, self.node_count())?;
        self.resolve_diag(msg.diag)?;
        let diag = self.cached_diag()?;
        let view = self.routed_view()?;
        let k = usize::try_from(msg.k).unwrap_or(usize::MAX);
        let lists = topk_lists(view, view.partitioner(), diag, &msg.cfg, msg.i, k);
        self.topk_queries += 1;
        Ok(ShardTopKReply { lists })
    }

    /// The worker's runtime report.
    pub fn stats(&self) -> WorkerStats {
        let (owned_part, owned_nodes, owned_bytes) = match (self.shape, &self.view) {
            (Some((_, _, owned)), Some(WorkerView::Resident(view))) => {
                let gp = &view.partitions()[owned as usize];
                (owned, gp.len(), gp.memory_bytes())
            }
            (Some((_, _, owned)), Some(WorkerView::Mapped(store))) => {
                let shard = &store.shards()[owned as usize];
                (owned, shard.len(), shard.mapped_bytes())
            }
            (Some((_, _, owned)), None) => (owned, 0, 0),
            _ => (0, 0, 0),
        };
        WorkerStats {
            owned_part,
            owned_nodes,
            resident_bytes: self.resident_bytes(),
            owned_bytes,
            builds: self.builds,
            queries: self.queries,
            topk_queries: self.topk_queries,
        }
    }
}

// ====================================================================
// Coordinator half
// ====================================================================

/// Why a worker exchange failed: a typed answer (the connection stays
/// usable) or a dead/broken link (poisoned until reconnect).
enum CallError {
    Typed(QueryError),
    Link(String),
}

/// One coordinator → worker connection plus the per-link protocol state.
struct WorkerLink {
    addr: String,
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    info: ServerInfo,
    next_id: u64,
    /// Fingerprint of the diagonal this worker has acknowledged, so
    /// queries ship 8 bytes instead of `8n` once the worker is warm.
    diag_fp: Option<u64>,
    alive: bool,
}

impl WorkerLink {
    fn connect(addr: &str) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        let _ = stream.set_nodelay(true);
        let reader_half = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut link = WorkerLink {
            addr: addr.to_string(),
            stream,
            reader: BufReader::new(reader_half),
            info: ServerInfo { node_count: 0, max_frame_bytes: DEFAULT_MAX_FRAME },
            next_id: 1,
            diag_fp: None,
            alive: true,
        };
        write_envelope(&mut link.stream, &Envelope::hello()).map_err(|e| format!("hello: {e}"))?;
        let ack = read_envelope(&mut link.reader, DEFAULT_MAX_FRAME)
            .map_err(|e| format!("hello: {e}"))?;
        if ack.kind != FrameKind::HelloAck {
            return Err(format!("handshake answered with {:?}", ack.kind));
        }
        link.info = ack.decode_server_info().map_err(|e| format!("handshake: {e}"))?;
        Ok(link)
    }

    /// One request/reply exchange. Replies echo the request id and kind;
    /// an error frame decodes to the typed failure. Any transport or
    /// protocol fault kills the link. Returns the reply envelope plus
    /// the total wire bytes moved (request + reply, headers included).
    fn exchange(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(Envelope, u64), CallError> {
        if !self.alive {
            return Err(CallError::Link("link is down after an earlier fault".into()));
        }
        if payload.len() as u64 > u64::from(self.info.max_frame_bytes) {
            // Nothing was written: the link stays usable.
            return Err(CallError::Link(format!(
                "request of {} bytes exceeds the worker's {}-byte frame limit",
                payload.len(),
                self.info.max_frame_bytes
            )));
        }
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope { kind, request_id: id, payload: payload.to_vec() };
        let mut bytes = env.encoded_len() as u64;
        if let Err(e) = write_envelope(&mut self.stream, &env) {
            self.alive = false;
            return Err(CallError::Link(format!("send: {e}")));
        }
        // The worker answers requests in order, so the next frame is ours;
        // anything else is a protocol fault.
        let reply = match read_envelope(&mut self.reader, self.info.max_frame_bytes) {
            Ok(reply) => reply,
            Err(e) => {
                self.alive = false;
                return Err(CallError::Link(format!("recv: {e}")));
            }
        };
        bytes += reply.encoded_len() as u64;
        if reply.request_id != id {
            self.alive = false;
            return Err(CallError::Link(format!(
                "reply for id {} while waiting on {id}",
                reply.request_id
            )));
        }
        if reply.kind == FrameKind::Error {
            return match reply.decode_error() {
                Ok(err) => Err(CallError::Typed(err)),
                Err(e) => {
                    self.alive = false;
                    Err(CallError::Link(format!("undecodable error frame: {e}")))
                }
            };
        }
        if reply.kind != kind {
            self.alive = false;
            return Err(CallError::Link(format!("{kind:?} answered with {:?}", reply.kind)));
        }
        Ok((reply, bytes))
    }
}

/// The 5th execution substrate: a coordinator over real `pasco worker`
/// processes. See the module docs for the architecture; see
/// [`DistributedEngine::connect`] for the partition-shipping handshake.
pub struct DistributedEngine {
    n: u32,
    partitioner: Partitioner,
    /// Owned-partition bytes per worker, in partition order.
    owned_bytes: Vec<u64>,
    /// Largest full-partition-set footprint any worker reported.
    resident_bytes: u64,
    links: Vec<Mutex<WorkerLink>>,
    metrics: Mutex<MetricsLog>,
}

impl DistributedEngine {
    /// Connects to `addrs`, partitions `graph` one range per worker
    /// (capped so every worker owns at least one node — extra addresses
    /// are left untouched), and ships the full partition set to every
    /// worker. The shipping is accounted as a real shuffle: encoded
    /// frame bytes, one record per shipped partition, measured wall
    /// time.
    ///
    /// # Errors
    /// [`SimRankError::Query`] wrapping [`QueryError::WorkerUnavailable`]
    /// when a worker cannot be reached, rejects a frame, or drops the
    /// connection mid-load.
    pub fn connect(graph: &CsrGraph, addrs: &[String]) -> Result<Self, SimRankError> {
        assert!(!addrs.is_empty(), "need at least one worker address");
        let n = graph.node_count();
        let want = addrs.len() as u32;
        let chunk = n.max(1).div_ceil(want.min(n.max(1)));
        let nparts = n.max(1).div_ceil(chunk);
        let partitioner = Partitioner::range(n, nparts);
        let parts = partition_graph(graph, &partitioner);
        let owned_bytes: Vec<u64> = parts.iter().map(GraphPartition::memory_bytes).collect();

        // Each partition's adjacency arrays encode once; the per-worker
        // LoadPartition payloads differ only in the 16-byte header
        // (n/parts/owned/index), so the W provisioning threads prepend
        // their header to the shared bytes instead of re-cloning and
        // re-encoding the whole graph W times.
        let encoded_parts: Vec<Vec<u8>> = parts.iter().map(WireCodec::to_bytes).collect();
        let load_payload =
            |w: u32, q: u32| load_partition_payload(n, nparts, w, q, &encoded_parts[q as usize]);

        let t0 = Instant::now();
        let results: Vec<Result<(WorkerLink, u64, u64), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = addrs[..nparts as usize]
                .iter()
                .enumerate()
                .map(|(w, addr)| {
                    let load_payload = &load_payload;
                    scope.spawn(move || {
                        let mut link = WorkerLink::connect(addr)?;
                        let mut bytes = 0u64;
                        let mut resident = 0u64;
                        for q in 0..nparts {
                            let (reply, moved) = link
                                .exchange(FrameKind::LoadPartition, &load_payload(w as u32, q))
                                .map_err(|e| match e {
                                    CallError::Typed(err) => err.to_string(),
                                    CallError::Link(detail) => detail,
                                })?;
                            bytes += moved;
                            let ack = LoadAck::from_bytes(&reply.payload)
                                .map_err(|e| format!("load ack: {e}"))?;
                            resident = ack.resident_bytes;
                        }
                        Ok((link, bytes, resident))
                    })
                })
                .collect();
            // A panicked provisioning thread downgrades to a per-worker
            // load failure instead of tearing down the coordinator.
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("load thread panicked".to_owned())))
                .collect()
        });

        let mut links = Vec::with_capacity(nparts as usize);
        let mut total_bytes = 0u64;
        let mut resident_max = 0u64;
        for (w, result) in results.into_iter().enumerate() {
            match result {
                Ok((link, bytes, resident)) => {
                    total_bytes += bytes;
                    resident_max = resident_max.max(resident);
                    links.push(Mutex::new(link));
                }
                Err(detail) => {
                    return Err(SimRankError::Query(QueryError::WorkerUnavailable {
                        detail: format!("worker {w} ({}): {detail}", addrs[w]),
                    }))
                }
            }
        }

        let engine = DistributedEngine {
            n,
            partitioner,
            owned_bytes,
            resident_bytes: resident_max,
            links,
            metrics: Mutex::new(MetricsLog::default()),
        };
        engine.record_shuffle(
            "distribute/partitions",
            total_bytes,
            nparts as u64 * engine.workers() as u64,
            nparts as u64 * engine.workers() as u64,
            t0.elapsed(),
        );
        Ok(engine)
    }

    /// Connects to `addrs` and provisions each worker from `store` by
    /// *path*: one [`LoadStore`] frame per worker instead of `parts`
    /// partition frames, so provisioning traffic is O(path length) and
    /// restart is O(1) in the graph's edge volume. The store directory
    /// must be reachable at the same path on every worker's filesystem
    /// (shared storage, or a prior copy) — the workers map it in place.
    ///
    /// The store carries the diagonal index too: every link starts with
    /// the store's diagonal fingerprint acknowledged, so queries never
    /// ship the `8n`-byte diagonal either.
    ///
    /// Needs at least `store.parts()` addresses (one worker per shard;
    /// extras are left untouched).
    ///
    /// # Errors
    /// [`SimRankError::InvalidConfig`] when too few addresses are given;
    /// [`SimRankError::Query`] wrapping [`QueryError::WorkerUnavailable`]
    /// when a worker cannot be reached or rejects the store.
    pub fn connect_store(store: &MappedStore, addrs: &[String]) -> Result<Self, SimRankError> {
        let n = store.node_count();
        let nparts = store.parts();
        if (addrs.len() as u32) < nparts {
            return Err(SimRankError::InvalidConfig(format!(
                "store has {nparts} shards but only {} worker addresses were given",
                addrs.len()
            )));
        }
        let partitioner = store.partitioner();
        let owned_bytes: Vec<u64> = store.shards().iter().map(|s| s.mapped_bytes()).collect();
        let fp = diag_fingerprint(&store.compose_diag());
        let dir = store.dir().to_string_lossy().into_owned();

        let t0 = Instant::now();
        let results: Vec<Result<(WorkerLink, u64, u64), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = addrs[..nparts as usize]
                .iter()
                .enumerate()
                .map(|(w, addr)| {
                    let dir = &dir;
                    scope.spawn(move || {
                        let mut link = WorkerLink::connect(addr)?;
                        let payload =
                            LoadStore { dir: dir.clone(), owned_part: w as u32 }.to_bytes();
                        let (reply, bytes) =
                            link.exchange(FrameKind::LoadStore, &payload).map_err(|e| match e {
                                CallError::Typed(err) => err.to_string(),
                                CallError::Link(detail) => detail,
                            })?;
                        let ack = LoadAck::from_bytes(&reply.payload)
                            .map_err(|e| format!("load ack: {e}"))?;
                        // The worker installed the store's own diagonal
                        // under this fingerprint while acking the load.
                        link.diag_fp = Some(fp);
                        Ok((link, bytes, ack.resident_bytes))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("load thread panicked".to_owned())))
                .collect()
        });

        let mut links = Vec::with_capacity(nparts as usize);
        let mut total_bytes = 0u64;
        let mut resident_max = 0u64;
        for (w, result) in results.into_iter().enumerate() {
            match result {
                Ok((link, bytes, resident)) => {
                    total_bytes += bytes;
                    resident_max = resident_max.max(resident);
                    links.push(Mutex::new(link));
                }
                Err(detail) => {
                    return Err(SimRankError::Query(QueryError::WorkerUnavailable {
                        detail: format!("worker {w} ({}): {detail}", addrs[w]),
                    }))
                }
            }
        }

        let engine = DistributedEngine {
            n,
            partitioner,
            owned_bytes,
            resident_bytes: resident_max,
            links,
            metrics: Mutex::new(MetricsLog::default()),
        };
        engine.record_shuffle(
            "distribute/store",
            total_bytes,
            u64::from(nparts),
            u64::from(nparts),
            t0.elapsed(),
        );
        Ok(engine)
    }

    /// How many workers (= partitions) this engine coordinates.
    pub fn workers(&self) -> usize {
        self.links.len()
    }

    /// Merges real wire traffic into the label's shuffle row (one row
    /// per label so per-query accounting stays O(1) in memory). Unlike
    /// the simulated engines, `est_network` here is *measured* transfer
    /// wall time.
    fn record_shuffle(&self, label: &str, bytes: u64, records: u64, messages: u64, wall: Duration) {
        let mut log = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = log.shuffles.iter_mut().find(|s| s.label == label) {
            s.bytes += bytes;
            s.records += records;
            s.messages += messages;
            s.est_network += wall;
        } else {
            log.shuffles.push(ShuffleMetrics {
                label: label.to_string(),
                bytes,
                records,
                messages,
                est_network: wall,
            });
        }
    }

    /// One exchange with worker `w`, wire accounting included. `label`
    /// names the shuffle row; `make` builds the payload once the link's
    /// diagonal state is known (inside the lock).
    fn call(
        &self,
        w: usize,
        kind: FrameKind,
        label: &str,
        records: u64,
        make: impl FnOnce(&mut WorkerLink) -> Vec<u8>,
    ) -> Result<Envelope, QueryError> {
        let t0 = Instant::now();
        // A poisoned link lock means a caller panicked mid-protocol and
        // the stream may be desynced: fail this worker typed rather
        // than resume a half-written conversation.
        let mut link = self.links[w].lock().map_err(|_| QueryError::WorkerUnavailable {
            detail: format!("worker {w}: link poisoned by a panicked caller"),
        })?;
        if !link.alive {
            // The worker *process* may have outlived the broken
            // connection — its loaded partitions and diagonal cache
            // survive reconnects — so try one fresh connection before
            // declaring the partition unreachable. A worker that truly
            // died refuses the connect fast and the error stays typed.
            // (A worker that *restarted* accepts but answers queries
            // with a typed "partition set not loaded" error: rebuild
            // the engine to re-provision it.)
            let addr = link.addr.clone();
            match WorkerLink::connect(&addr) {
                Ok(fresh) => *link = fresh,
                Err(detail) => {
                    drop(link);
                    return Err(QueryError::WorkerUnavailable {
                        detail: format!("worker {w} ({addr}): reconnect failed: {detail}"),
                    });
                }
            }
        }
        let payload = make(&mut link);
        let mut result = link.exchange(kind, &payload);
        if matches!(result, Err(CallError::Link(_))) {
            // A fault on a previously-healthy link is most often a
            // network blip, not a dead worker: retry the same request
            // once over a fresh connection (queries and loads are pure,
            // so a replay is safe; the worker's loaded state survives
            // reconnects). A worker that truly died refuses the connect
            // fast and the original fault stands.
            if let Ok(fresh) = WorkerLink::connect(&link.addr) {
                *link = fresh;
                result = link.exchange(kind, &payload);
            }
        }
        if result.is_err() {
            // Forget the optimistic diagonal mark on *any* failure. A
            // typed reply may mean the worker's cache was wiped (a second
            // coordinator re-provisioned it) — without this, every retry
            // would send the cached fingerprint into the same "re-ship
            // it" error forever. A link fault clears it for the
            // reconnect path.
            link.diag_fp = None;
        }
        let addr = link.addr.clone();
        drop(link);
        match result {
            Ok((reply, bytes)) => {
                self.record_shuffle(label, bytes, records, 2, t0.elapsed());
                Ok(reply)
            }
            Err(CallError::Typed(err)) => Err(err),
            Err(CallError::Link(detail)) => Err(QueryError::WorkerUnavailable {
                detail: format!("worker {w} ({addr}): {detail}"),
            }),
        }
    }

    /// Builds the [`DiagPayload`] for a link: full on first contact with
    /// this diagonal, fingerprint-only once acknowledged. Optimistically
    /// marks the fingerprint shipped; [`DistributedEngine::call`] clears
    /// the mark again on any failed exchange.
    fn diag_payload(link: &mut WorkerLink, diag: &[f64]) -> DiagPayload {
        let fp = diag_fingerprint(diag);
        if link.diag_fp == Some(fp) {
            DiagPayload::cached(fp)
        } else {
            link.diag_fp = Some(fp);
            DiagPayload { fingerprint: fp, values: Some(diag.to_vec()) }
        }
    }

    fn owner(&self, v: NodeId) -> usize {
        self.partitioner.owner(v) as usize
    }

    /// Routes one [`ShardQuery`] to the owner of `route`. `diag` is
    /// `None` for score-free kinds ([`ShardQueryKind::Cohort`]): the
    /// worker ignores the diagonal payload there, so a placeholder is
    /// sent and the link's diagonal-cache state stays untouched —
    /// interleaving cohorts with scored queries must not force the
    /// `8n`-byte diagonal back onto the wire.
    fn routed_query(
        &self,
        diag: Option<&[f64]>,
        cfg: &SimRankConfig,
        route: NodeId,
        kind: ShardQueryKind,
    ) -> Result<QueryResponse, QueryError> {
        let w = self.owner(route);
        let reply = self.call(w, FrameKind::ShardQuery, "query/route", 1, |link| {
            let diag = match diag {
                Some(diag) => Self::diag_payload(link, diag),
                None => DiagPayload::cached(0),
            };
            ShardQuery { cfg: *cfg, diag, kind }.to_bytes()
        })?;
        QueryResponse::from_bytes(&reply.payload).map_err(|e| QueryError::WorkerUnavailable {
            detail: format!("worker {w}: bad response: {e}"),
        })
    }

    fn protocol_violation<T>(&self, w: usize, what: &str) -> Result<T, QueryError> {
        Err(QueryError::WorkerUnavailable { detail: format!("worker {w}: {what}") })
    }
}

/// A [`LoadPartition`] frame payload assembled around pre-encoded
/// partition bytes. Byte-identical to
/// `LoadPartition { n, parts, owned_part, part_index, partition }.to_bytes()`
/// — a unit test pins that equivalence — without re-encoding the
/// partition for every worker it ships to.
fn load_partition_payload(n: u32, parts: u32, owned: u32, index: u32, enc: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16 + enc.len());
    payload.extend_from_slice(&n.to_le_bytes());
    payload.extend_from_slice(&parts.to_le_bytes());
    payload.extend_from_slice(&owned.to_le_bytes());
    payload.extend_from_slice(&index.to_le_bytes());
    payload.extend_from_slice(enc);
    payload
}

/// [`RowSource`] over the rows the workers shipped back: row `i` lives
/// in the reply of the worker owning node `i` — the same owner-indexed
/// shape as the sharded engine's `ShardStoredRows`, so the solve is the
/// same solve.
struct ShippedRows<'a> {
    n: u32,
    partitioner: Partitioner,
    shard_rows: &'a [Vec<Row>],
}

impl RowSource for ShippedRows<'_> {
    fn dim(&self) -> usize {
        self.n as usize
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        let owner = self.partitioner.owner(i);
        let (start, _) = self.partitioner.range_of(owner).expect("range partitioner");
        row.clear();
        row.extend_from_slice(&self.shard_rows[owner as usize][(i - start) as usize]);
    }
}

impl SimRankEngine for DistributedEngine {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError> {
        let t0 = Instant::now();
        // Every worker walks its owned sources concurrently; the rows
        // come back over the wire in partition order.
        let results: Vec<Result<(Vec<Row>, Duration), QueryError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers())
                .map(|w| {
                    scope.spawn(move || {
                        let tw = Instant::now();
                        let reply = self.call(w, FrameKind::BuildShard, "build/rows", 1, |_| {
                            BuildShard { cfg: *cfg }.to_bytes()
                        })?;
                        let rows = BuildShardReply::from_bytes(&reply.payload).map_err(|e| {
                            QueryError::WorkerUnavailable {
                                detail: format!("worker {w}: bad build reply: {e}"),
                            }
                        })?;
                        Ok((rows.rows, tw.elapsed()))
                    })
                })
                .collect();
            // A panicked build thread downgrades to a per-worker typed
            // error instead of tearing down the coordinator.
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(QueryError::WorkerUnavailable {
                            detail: "build thread panicked".into(),
                        })
                    })
                })
                .collect()
        });

        let mut shard_rows = Vec::with_capacity(self.workers());
        let mut task_times = Vec::with_capacity(self.workers());
        for (w, result) in results.into_iter().enumerate() {
            let (rows, took) = result.map_err(SimRankError::Query)?;
            // The engine's partitioner is `Partitioner::range` by
            // construction and `w < workers() == parts`.
            // pasco-lint: allow(panic-reachable-in-serving)
            let (start, end) = self.partitioner.range_of(w as u32).expect("range partitioner");
            if rows.len() != (end - start) as usize {
                return Err(SimRankError::Query(QueryError::WorkerUnavailable {
                    detail: format!(
                        "worker {w} returned {} rows for a {}-node partition",
                        rows.len(),
                        end - start
                    ),
                }));
            }
            shard_rows.push(rows);
            task_times.push(took);
        }

        // The cheap half stays on the coordinator: L Jacobi sweeps over
        // the assembled system — the identical solver call, so the
        // diagonal is bitwise the other engines'.
        let strategy = cfg.resolve_ai_strategy(self.n);
        let b = vec![1.0; self.n as usize];
        let x0 = vec![1.0 - cfg.c; self.n as usize];
        let jacobi_cfg =
            JacobiConfig { iterations: cfg.l, tolerance: None, record_residuals: true };
        let rows =
            ShippedRows { n: self.n, partitioner: self.partitioner, shard_rows: &shard_rows };
        let result = jacobi::solve(&rows, &b, &x0, &jacobi_cfg);
        // The workers materialised rows either way (they must, to ship
        // them); the reported footprint honours the strategy the other
        // engines would have used, keeping BuildOutcome comparable.
        let rows_bytes = match strategy {
            AiStrategy::Store | AiStrategy::Auto { .. } => {
                Some(shard_rows.iter().flatten().map(|r| 24 + 12 * r.len() as u64).sum::<u64>())
            }
            AiStrategy::Recompute => None,
        };

        let busy: Duration = task_times.iter().sum();
        let max_task = task_times.iter().copied().max().unwrap_or_default();
        {
            let mut log = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
            log.stages.push(StageMetrics {
                label: "build/walks".to_string(),
                tasks: self.workers(),
                wall: t0.elapsed(),
                busy,
                max_task,
                // No simulation on this substrate: the makespan is the
                // measured slowest worker.
                sim_makespan: max_task,
            });
        }

        Ok(BuildOutcome {
            diag: DiagonalIndex::new(result.x),
            strategy,
            residuals: result.residuals,
            rows_bytes,
            cluster: Some(self.metrics.lock().unwrap_or_else(PoisonError::into_inner).report()),
        })
    }

    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError> {
        check_node(source, self.n)?;
        match self.routed_query(None, cfg, source, ShardQueryKind::Cohort { v: source })? {
            QueryResponse::Cohort(dists) => Ok(dists),
            _ => self.protocol_violation(self.owner(source), "cohort answered with a non-cohort"),
        }
    }

    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError> {
        check_node(i, self.n)?;
        check_node(j, self.n)?;
        if i == j {
            return Ok(1.0);
        }
        match self.routed_query(Some(diag), cfg, i, ShardQueryKind::SinglePair { i, j })? {
            QueryResponse::Score(s) => Ok(s),
            _ => self.protocol_violation(self.owner(i), "single-pair answered with a non-score"),
        }
    }

    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError> {
        check_node(i, self.n)?;
        match self.routed_query(Some(diag), cfg, i, ShardQueryKind::SingleSource { i })? {
            QueryResponse::Scores(scores) if scores.len() == self.n as usize => Ok(scores),
            QueryResponse::Scores(scores) => self.protocol_violation(
                self.owner(i),
                &format!("single-source row of {} entries for {} nodes", scores.len(), self.n),
            ),
            _ => self.protocol_violation(self.owner(i), "single-source answered with a non-row"),
        }
    }

    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        check_node(i, self.n)?;
        let w = self.owner(i);
        let reply = self.call(w, FrameKind::ShardTopK, "query/topk", 1, |link| {
            ShardTopK { cfg: *cfg, diag: Self::diag_payload(link, diag), i, k: k as u64 }.to_bytes()
        })?;
        let lists = ShardTopKReply::from_bytes(&reply.payload).map_err(|e| {
            QueryError::WorkerUnavailable { detail: format!("worker {w}: bad top-k reply: {e}") }
        })?;
        // The coordinator's half of the plan: the same merge as the
        // sharded engine, over lists that crossed a real wire.
        Ok(merge_ranked(&lists.lists, k))
    }

    fn cluster_report(&self) -> Option<ClusterReport> {
        Some(self.metrics.lock().unwrap_or_else(PoisonError::into_inner).report())
    }

    fn memory_footprint(&self) -> EngineFootprint {
        // Adjacency replicates (each worker holds the full partition
        // set), so the per-worker demand does not shrink with workers —
        // `partitioned: false` is the honest flag; the owned-partition
        // breakdown below is what scales.
        EngineFootprint { per_worker_bytes: self.resident_bytes, partitioned: false }
    }

    fn shard_footprints(&self) -> Option<Vec<u64>> {
        Some(self.owned_bytes.clone())
    }

    fn worker_stats(&self) -> Option<Vec<Result<WorkerStats, QueryError>>> {
        let stats = (0..self.workers())
            .map(|w| {
                let reply =
                    self.call(w, FrameKind::WorkerStats, "control/stats", 1, |_| Empty.to_bytes())?;
                WorkerStats::from_bytes(&reply.payload).map_err(|e| QueryError::WorkerUnavailable {
                    detail: format!("worker {w}: bad stats: {e}"),
                })
            })
            .collect();
        Some(stats)
    }
}

impl std::fmt::Debug for DistributedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedEngine")
            .field("nodes", &self.n)
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::local;
    use crate::engine::sharded::ShardedEngine;
    use pasco_graph::generators;

    /// Drives `ShardWorkerCore`s directly (no sockets): the wire-free
    /// half of the bit-identity proof. `tests/distributed.rs` repeats it
    /// over real loopback TCP.
    fn load_workers(g: &CsrGraph, workers: u32) -> Vec<ShardWorkerCore> {
        let n = g.node_count();
        let chunk = n.max(1).div_ceil(workers.min(n.max(1)));
        let nparts = n.max(1).div_ceil(chunk);
        let partitioner = Partitioner::range(n, nparts);
        let parts = partition_graph(g, &partitioner);
        (0..nparts)
            .map(|w| {
                let mut core = ShardWorkerCore::new();
                assert!(!core.ready());
                for (q, part) in parts.iter().enumerate() {
                    let ack = core
                        .load_partition(LoadPartition {
                            n,
                            parts: nparts,
                            owned_part: w,
                            part_index: q as u32,
                            partition: part.clone(),
                        })
                        .unwrap();
                    assert_eq!(ack.loaded, q as u32 + 1);
                }
                assert!(core.ready());
                core
            })
            .collect()
    }

    #[test]
    fn worker_cores_rebuild_the_exact_rows_and_queries() {
        let g = generators::barabasi_albert(90, 3, 5);
        let cfg = SimRankConfig::fast().with_seed(21);
        let out = local::build_diagonal(&g, &cfg);
        let diag = out.diag.as_slice();
        let sharded = ShardedEngine::new(&g, 3);
        for workers in [1u32, 3] {
            let mut cores = load_workers(&g, workers);
            // Assembled shipped rows must solve to the local diagonal.
            let n = g.node_count();
            let nparts = cores.len() as u32;
            let partitioner = Partitioner::range(n, nparts);
            let shard_rows: Vec<Vec<Row>> =
                cores.iter_mut().map(|c| c.build(&cfg).unwrap().rows).collect();
            let rows = ShippedRows { n, partitioner, shard_rows: &shard_rows };
            let b = vec![1.0; n as usize];
            let x0 = vec![1.0 - cfg.c; n as usize];
            let jc = JacobiConfig { iterations: cfg.l, tolerance: None, record_residuals: true };
            let solved = jacobi::solve(&rows, &b, &x0, &jc);
            assert_eq!(DiagonalIndex::new(solved.x), out.diag, "{workers} workers");
            assert_eq!(solved.residuals, out.residuals, "{workers} workers");

            // Routed queries equal the sharded engine's (itself bitwise
            // local).
            let owner = partitioner.owner(7) as usize;
            let resp = cores[owner]
                .query(ShardQuery {
                    cfg,
                    diag: DiagPayload::full(diag),
                    kind: ShardQueryKind::SinglePair { i: 7, j: 40 },
                })
                .unwrap();
            assert_eq!(resp, QueryResponse::Score(sharded.single_pair(diag, &cfg, 7, 40).unwrap()));
            // Second query rides the cached fingerprint.
            let resp = cores[owner]
                .query(ShardQuery {
                    cfg,
                    diag: DiagPayload::cached(diag_fingerprint(diag)),
                    kind: ShardQueryKind::SingleSource { i: 7 },
                })
                .unwrap();
            assert_eq!(resp, QueryResponse::Scores(sharded.single_source(diag, &cfg, 7).unwrap()));
            // Top-k lists merge to the sharded (= local) ranking.
            let lists = cores[owner]
                .topk(ShardTopK {
                    cfg,
                    diag: DiagPayload::cached(diag_fingerprint(diag)),
                    i: 7,
                    k: 8,
                })
                .unwrap();
            assert_eq!(
                merge_ranked(&lists.lists, 8),
                sharded.single_source_topk(diag, &cfg, 7, 8).unwrap()
            );
            let stats = cores[owner].stats();
            assert_eq!(stats.queries, 2);
            assert_eq!(stats.topk_queries, 1);
            assert!(stats.owned_bytes <= stats.resident_bytes);
        }
    }

    #[test]
    fn worker_core_rejects_unknown_fingerprints_and_early_queries() {
        let g = generators::cycle(12);
        let cfg = SimRankConfig::fast();
        let mut core = ShardWorkerCore::new();
        let err = core.build(&cfg).unwrap_err();
        assert!(matches!(err, QueryError::WorkerUnavailable { .. }), "{err}");
        let mut cores = load_workers(&g, 2);
        let err = cores[0]
            .query(ShardQuery {
                cfg,
                diag: DiagPayload::cached(0xdead),
                kind: ShardQueryKind::SingleSource { i: 0 },
            })
            .unwrap_err();
        assert!(err.to_string().contains("not cached"), "{err}");
        // A shipped diagonal whose fingerprint lies is refused.
        let err = cores[0]
            .query(ShardQuery {
                cfg,
                diag: DiagPayload { fingerprint: 1, values: Some(vec![0.5; 12]) },
                kind: ShardQueryKind::SingleSource { i: 0 },
            })
            .unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // Out-of-range nodes are typed errors, not worker panics.
        let err = cores[0]
            .query(ShardQuery {
                cfg,
                diag: DiagPayload::full(&[0.5; 12]),
                kind: ShardQueryKind::Cohort { v: 99 },
            })
            .unwrap_err();
        assert_eq!(err, QueryError::NodeOutOfRange { node: 99, node_count: 12 });
    }

    #[test]
    fn prebuilt_load_payload_matches_the_codec() {
        // `connect` hand-assembles LoadPartition payloads around shared
        // pre-encoded partition bytes; this pins them byte-identical to
        // the codec so the two can never drift apart silently.
        let g = generators::barabasi_albert(40, 3, 1);
        let partitioner = Partitioner::range(40, 3);
        let parts = partition_graph(&g, &partitioner);
        for (q, part) in parts.iter().enumerate() {
            let enc = part.to_bytes();
            for w in 0..3u32 {
                let msg = LoadPartition {
                    n: 40,
                    parts: 3,
                    owned_part: w,
                    part_index: q as u32,
                    partition: part.clone(),
                };
                assert_eq!(
                    load_partition_payload(40, 3, w, q as u32, &enc),
                    msg.to_bytes(),
                    "worker {w} partition {q}"
                );
            }
        }
    }

    #[test]
    fn worker_core_validates_partition_shape() {
        let g = generators::cycle(10);
        let partitioner = Partitioner::range(10, 2);
        let parts = partition_graph(&g, &partitioner);
        let mut core = ShardWorkerCore::new();
        // Wrong range for the claimed index.
        let err = core
            .load_partition(LoadPartition {
                n: 10,
                parts: 2,
                owned_part: 0,
                part_index: 1,
                partition: parts[0].clone(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("range partitioner assigns"), "{err}");
        // Index out of range.
        let err = core
            .load_partition(LoadPartition {
                n: 10,
                parts: 2,
                owned_part: 0,
                part_index: 5,
                partition: parts[0].clone(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
