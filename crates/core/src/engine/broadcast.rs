//! Broadcasting-model execution: the graph replicated to every worker.
//!
//! The fast model of the paper's evaluation. Indexing partitions *nodes*
//! into ranges (one task each); queries partition the *walker cohort*.
//! Nothing is shuffled — the only communication is the initial broadcast,
//! which fails when `graph + sampling index` exceed the per-worker budget
//! (the paper's clue-web `N/A`).

use crate::ai::ai_row;
use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::{topk_from_dense, BuildOutcome, EngineFootprint, SimRankEngine};
use crate::error::SimRankError;
use crate::queries::{forward_seed, query_seed, score_pair, weighted_support};
use pasco_cluster::{Broadcast, Cluster, ClusterConfig, ClusterReport};
use pasco_graph::partition::Partitioner;
use pasco_graph::{CsrGraph, NodeId, ReverseChainIndex};
use pasco_mc::counts::{CountMap, MassMap};
use pasco_mc::rng::mix;
use pasco_mc::walks::{reverse_walk_distributions, StepDistributions, WalkParams};
use std::sync::Arc;

/// Materialised `aᵢ` rows, grouped per node-range task.
type RowsByRange = Vec<Vec<Vec<(u32, f64)>>>;
/// Forward-stage work item: `(t, cᵗ, support node, mass, walkers)`.
type ForwardItem = (usize, f64, NodeId, f64, u32);

/// Broadcasting-model engine: holds the cluster and the replicated graph.
pub struct BroadcastEngine {
    cluster: Cluster,
    graph: Broadcast<Arc<CsrGraph>>,
    rci: Broadcast<Arc<ReverseChainIndex>>,
}

impl BroadcastEngine {
    /// Replicates `graph` and its sampling index to every worker.
    ///
    /// # Errors
    /// [`SimRankError::Cluster`] when the combined footprint exceeds the
    /// per-worker memory budget.
    pub fn new(
        cluster_cfg: ClusterConfig,
        graph: Arc<CsrGraph>,
        rci: Arc<ReverseChainIndex>,
    ) -> Result<Self, SimRankError> {
        let cluster = Cluster::new(cluster_cfg);
        let bytes = graph.memory_bytes() + rci.memory_bytes();
        let graph = cluster.broadcast(graph, bytes)?;
        // Footprint fully accounted with the graph broadcast above.
        let rci = cluster.broadcast(rci, 0)?;
        Ok(Self { cluster, graph, rci })
    }

    /// The underlying cluster (metrics access).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn node_ranges(&self, n: u32) -> Vec<(u32, u32)> {
        let parts = (self.cluster.config().default_partitions() as u32).min(n.max(1));
        let p = Partitioner::range(n, parts);
        (0..parts).filter_map(|i| p.range_of(i)).collect()
    }

    /// Offline indexing in the Broadcasting model. Row generation is one
    /// task per node range; each Jacobi sweep re-broadcasts `x` (small) and
    /// updates ranges in parallel. Bitwise identical to the local engine.
    fn build_diagonal_impl(&self, cfg: &SimRankConfig) -> (DiagonalIndex, Vec<f64>, Option<u64>) {
        let n = self.graph.node_count();
        let params = WalkParams::new(cfg.t, cfg.r);
        let strategy = cfg.resolve_ai_strategy(n);
        let ranges = self.node_ranges(n);

        // Row generation (Store) — one task per node range.
        let stored: Option<RowsByRange> = match strategy {
            AiStrategy::Recompute => None,
            _ => {
                let graph = &self.graph;
                Some(self.cluster.run_stage("index/walks", ranges.clone(), |_, (lo, hi)| {
                    (lo..hi)
                        .map(|i| {
                            ai_row(&reverse_walk_distributions(graph, i, params, cfg.seed), cfg.c)
                        })
                        .collect::<Vec<_>>()
                }))
            }
        };
        let rows_bytes = stored
            .as_ref()
            .map(|parts| parts.iter().flatten().map(|r| 24 + 12 * r.len() as u64).sum());
        let stored = stored.map(Arc::new);

        // Jacobi sweeps: x lives on the driver, conceptually re-broadcast
        // each sweep (8n bytes — always under the budget by a wide margin).
        let mut x = vec![1.0 - cfg.c; n as usize];
        let mut residuals = Vec::with_capacity(cfg.l);
        for _ in 0..cfg.l {
            let x_ref = &x;
            let graph = &self.graph;
            let stored_ref = stored.as_ref();
            let new_parts: Vec<Vec<f64>> = self.cluster.run_stage(
                "index/jacobi",
                ranges.iter().copied().enumerate().collect(),
                |_, (part_idx, (lo, hi))| {
                    let mut out = Vec::with_capacity((hi - lo) as usize);
                    let mut row_buf: Vec<(u32, f64)> = Vec::new();
                    for i in lo..hi {
                        let row: &[(u32, f64)] = match stored_ref {
                            Some(parts) => &parts[part_idx][(i - lo) as usize],
                            None => {
                                row_buf.clear();
                                row_buf.extend(ai_row(
                                    &reverse_walk_distributions(graph, i, params, cfg.seed),
                                    cfg.c,
                                ));
                                &row_buf
                            }
                        };
                        let mut off = 0.0;
                        let mut diagv = 0.0;
                        for &(j, a) in row {
                            if j == i {
                                diagv = a;
                            } else {
                                off += a * x_ref[j as usize];
                            }
                        }
                        assert!(diagv != 0.0, "zero diagonal at row {i}");
                        out.push((1.0 - off) / diagv);
                    }
                    out
                },
            );
            x = new_parts.into_iter().flatten().collect();
            // Residual pass (matches the local engine's bookkeeping).
            let x_ref = &x;
            let graph = &self.graph;
            let stored_ref = stored.as_ref();
            let partial: Vec<f64> = self.cluster.run_stage(
                "index/residual",
                ranges.iter().copied().enumerate().collect(),
                |_, (part_idx, (lo, hi))| {
                    let mut worst = 0.0f64;
                    let mut row_buf: Vec<(u32, f64)> = Vec::new();
                    for i in lo..hi {
                        let row: &[(u32, f64)] = match stored_ref {
                            Some(parts) => &parts[part_idx][(i - lo) as usize],
                            None => {
                                row_buf.clear();
                                row_buf.extend(ai_row(
                                    &reverse_walk_distributions(graph, i, params, cfg.seed),
                                    cfg.c,
                                ));
                                &row_buf
                            }
                        };
                        let ax: f64 = row.iter().map(|&(j, a)| a * x_ref[j as usize]).sum();
                        worst = worst.max((ax - 1.0).abs());
                    }
                    worst
                },
            );
            residuals.push(partial.into_iter().fold(0.0, f64::max));
        }
        (DiagonalIndex::new(x), residuals, rows_bytes)
    }

    /// Simulates the query cohort for `source`, splitting the `R'` walkers
    /// across tasks. Identical counts to the local cohort because walker
    /// `w`'s trajectory depends only on `(seed, source, w, step)`.
    pub fn query_cohort(&self, cfg: &SimRankConfig, source: NodeId) -> StepDistributions {
        let seed = query_seed(cfg);
        let tasks = self.cluster.config().default_partitions() as u32;
        let chunk = cfg.r_query.div_ceil(tasks).max(1);
        let ranges: Vec<(u32, u32)> = (0..tasks)
            .map(|k| (k * chunk, ((k + 1) * chunk).min(cfg.r_query)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        let graph = &self.graph;
        let t_steps = cfg.t;
        let partials: Vec<Vec<Vec<(u32, u64)>>> =
            self.cluster.run_stage("query/cohort", ranges, |_, (w_lo, w_hi)| {
                let mut maps: Vec<CountMap> =
                    (0..t_steps).map(|_| CountMap::with_capacity((w_hi - w_lo) as usize)).collect();
                for w in w_lo..w_hi {
                    let key = pasco_mc::walks::walker_key(seed, source, w);
                    let mut pos = source;
                    for t in 1..=t_steps {
                        match pasco_mc::walks::reverse_step(graph, pos, key, t as u32) {
                            Some(next) => {
                                pos = next;
                                maps[t - 1].add(pos, 1);
                            }
                            None => break,
                        }
                    }
                }
                maps.into_iter().map(|m| m.into_sorted_vec()).collect()
            });
        // Merge per-step histograms across tasks.
        let mut counts = Vec::with_capacity(t_steps + 1);
        counts.push(vec![(source, cfg.r_query as u64)]);
        for t in 0..t_steps {
            let mut merged = CountMap::with_capacity(cfg.r_query as usize);
            for part in &partials {
                for &(node, c) in &part[t] {
                    merged.add(node, c);
                }
            }
            counts.push(merged.into_sorted_vec());
        }
        StepDistributions { source, walkers: cfg.r_query, counts }
    }

    /// MCSS in the Broadcasting model: cohort stage, then one stage of
    /// mass-carrying forward walks over all `(t, support-entry)` items.
    fn single_source_impl(&self, diag: &[f64], cfg: &SimRankConfig, i: NodeId) -> Vec<f64> {
        let dists = self.query_cohort(cfg, i);
        let n = self.graph.node_count() as usize;
        let mut out = vec![0.0f64; n];

        // t = 0 term handled on the driver (no propagation); later terms
        // become (t, cᵗ, node, mass, walkers) work items with the same
        // mass-proportional walker allocation as the local engine.
        let mut ct = 1.0;
        let mut items: Vec<ForwardItem> = Vec::new();
        for t in 0..=cfg.t {
            let y = weighted_support(&dists, t, diag);
            if t == 0 {
                for &(k, m) in &y {
                    out[k as usize] += ct * m;
                }
            } else {
                items.extend(
                    crate::queries::forward_allocation(&y, cfg.r_forward)
                        .into_iter()
                        .map(|(k, yk, nk)| (t, ct, k, yk, nk)),
                );
            }
            ct *= cfg.c;
        }
        let tasks = self.cluster.config().default_partitions();
        let chunk = items.len().div_ceil(tasks).max(1);
        let batches: Vec<Vec<ForwardItem>> = items.chunks(chunk).map(|c| c.to_vec()).collect();
        if batches.is_empty() {
            out[i as usize] = 1.0;
            return out;
        }
        let graph = &self.graph;
        let rci = &self.rci;
        let partials: Vec<Vec<(u32, f64)>> =
            self.cluster.run_stage("query/forward", batches, |_, batch| {
                let mut acc = MassMap::with_capacity(batch.len() * 4);
                for (t, ct, k, yk, nk) in batch {
                    let seed = forward_seed(cfg, i, t);
                    let per = yk / nk as f64;
                    for w in 0..nk {
                        let key = mix(&[seed, k as u64, w as u64, t as u64]);
                        if let Some((node, mass)) =
                            pasco_mc::forward::forward_walk(graph, rci, k, per, t, key)
                        {
                            acc.add(node, ct * mass);
                        }
                    }
                }
                acc.into_sorted_vec()
            });
        for part in partials {
            for (node, mass) in part {
                out[node as usize] += mass;
            }
        }
        out[i as usize] = 1.0;
        out
    }
}

impl SimRankEngine for BroadcastEngine {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError> {
        let strategy = cfg.resolve_ai_strategy(self.graph.node_count());
        let (diag, residuals, rows_bytes) = self.build_diagonal_impl(cfg);
        Ok(BuildOutcome {
            diag,
            strategy,
            residuals,
            rows_bytes,
            cluster: Some(self.cluster.report()),
        })
    }

    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError> {
        // Resolves to the inherent cluster-staged implementation.
        Ok(BroadcastEngine::query_cohort(self, cfg, source))
    }

    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError> {
        if i == j {
            return Ok(1.0);
        }
        let di = BroadcastEngine::query_cohort(self, cfg, i);
        let dj = BroadcastEngine::query_cohort(self, cfg, j);
        Ok(score_pair(&di, &dj, diag, cfg.c))
    }

    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError> {
        Ok(self.single_source_impl(diag, cfg, i))
    }

    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        let scores = self.single_source_impl(diag, cfg, i);
        Ok(topk_from_dense(&scores, i, k))
    }

    fn cluster_report(&self) -> Option<ClusterReport> {
        Some(self.cluster.report())
    }

    fn memory_footprint(&self) -> EngineFootprint {
        EngineFootprint {
            per_worker_bytes: self.graph.memory_bytes() + self.rci.memory_bytes(),
            partitioned: false,
        }
    }
}

impl std::fmt::Debug for BroadcastEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastEngine")
            .field("nodes", &self.graph.node_count())
            .field("cluster", &self.cluster.config())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::local;
    use pasco_cluster::ClusterError;
    use pasco_graph::generators;

    fn engine(g: &Arc<CsrGraph>, workers: usize) -> BroadcastEngine {
        let rci = Arc::new(ReverseChainIndex::build(g));
        BroadcastEngine::new(ClusterConfig::local(workers), Arc::clone(g), rci).unwrap()
    }

    #[test]
    fn broadcast_diagonal_matches_local_bitwise() {
        let g = Arc::new(generators::barabasi_albert(200, 3, 4));
        let cfg = SimRankConfig::fast().with_seed(77);
        let eng = engine(&g, 3);
        let out_b = eng.build_diagonal(&cfg).unwrap();
        let out_l = local::build_diagonal(&g, &cfg);
        assert_eq!(out_b.diag, out_l.diag);
        assert_eq!(out_b.residuals, out_l.residuals);
        assert!(out_b.rows_bytes.is_some());
        assert!(out_b.cluster.is_some());
    }

    #[test]
    fn broadcast_cohort_matches_local_cohort() {
        let g = Arc::new(generators::rmat(8, 1500, generators::RmatParams::default(), 6));
        let cfg = SimRankConfig::fast();
        let eng = engine(&g, 4);
        let b = eng.query_cohort(&cfg, 9);
        let l = crate::queries::query_cohort(&g, &cfg, 9);
        assert_eq!(b, l);
    }

    #[test]
    fn broadcast_queries_match_local() {
        let g = Arc::new(generators::barabasi_albert(120, 3, 2));
        let cfg = SimRankConfig::fast();
        let eng = engine(&g, 3);
        let out = local::build_diagonal(&g, &cfg);
        let diag = out.diag.as_slice();

        let sp_b = eng.single_pair(diag, &cfg, 4, 70).unwrap();
        let sp_l = crate::queries::single_pair(&g, diag, &cfg, 4, 70);
        assert_eq!(sp_b, sp_l, "MCSP must be bitwise identical");

        let rci = ReverseChainIndex::build(&g);
        let ss_b = eng.single_source(diag, &cfg, 4).unwrap();
        let ss_l = crate::queries::single_source(&g, &rci, diag, &cfg, 4);
        for (a, b) in ss_b.iter().zip(&ss_l) {
            assert!((a - b).abs() < 1e-12, "MCSS {a} vs {b}");
        }
    }

    #[test]
    fn broadcast_fails_beyond_memory_budget() {
        let g = Arc::new(generators::barabasi_albert(500, 4, 3));
        let rci = Arc::new(ReverseChainIndex::build(&g));
        let tiny = ClusterConfig::local(2).with_memory_per_worker(100);
        let err = BroadcastEngine::new(tiny, Arc::clone(&g), rci).unwrap_err();
        match err {
            SimRankError::Cluster(ClusterError::BroadcastExceedsMemory { needed, budget }) => {
                assert!(needed > budget);
            }
            other => panic!("expected broadcast memory error, got {other}"),
        }
    }

    #[test]
    fn stage_metrics_are_recorded() {
        let g = Arc::new(generators::barabasi_albert(100, 3, 8));
        let cfg = SimRankConfig::fast();
        let eng = engine(&g, 2);
        let _ = eng.build_diagonal(&cfg).unwrap();
        let report = eng.cluster().report();
        assert!(report.stages > cfg.l * 2, "stages: {}", report.stages);
        assert_eq!(report.shuffle_bytes, 0, "broadcast mode never shuffles");
    }
}
