//! Sharded in-process execution: the graph partitioned across rayon shards.
//!
//! The paper's thesis is that SimRank scales by partitioning random-walk
//! work; PRSim and the MPC single-source line of work refine that to
//! *partition by source, keep reverse-walk state local*. This engine is
//! that decomposition on one box: nodes are range-partitioned into
//! `shards` sub-views (each a [`pasco_graph::partitioned::GraphPartition`]
//! plus its slice of the materialised system rows during the build), the
//! offline build runs
//! shard-parallel under rayon with a merged [`BuildOutcome`], and every
//! query is routed to the shard owning its source node. A walker that
//! wanders off its shard follows the [`PartitionedView`] to the owning
//! partition — on one box a slice index, on the NUMA/mmap/RPC substrates
//! this engine is the stepping stone for, a remote access.
//!
//! The engine is **bit-identical** to
//! [`LocalEngine`](crate::engine::local::LocalEngine) on every query kind
//! at every shard count, *structurally*: walks and accumulations execute
//! the very same generic kernels
//! ([`pasco_mc::walks::reverse_walk_distributions_on`],
//! [`pasco_mc::forward::forward_walk_on`],
//! [`crate::queries::single_source_from_dists_on`],
//! [`crate::queries::sparse_masses_on`]) and the build solves through
//! [`pasco_solver::jacobi::solve`] — only the adjacency source differs
//! (routed view vs resident graph). Top-`k` additionally exercises the
//! distributed plan: per-shard rankings k-way merged with the exact
//! `rank_topk` tie-break order.

use crate::ai::ai_row;
use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::{BuildOutcome, EngineFootprint, SimRankEngine};
use crate::error::SimRankError;
use crate::queries::{
    query_seed, rank_topk, ranking_cmp, score_pair, single_source_from_dists_on, sparse_masses_on,
};
use pasco_cluster::ClusterReport;
use pasco_graph::adjacency::{ForwardSampler, WalkAdjacency};
use pasco_graph::partition::Partitioner;
use pasco_graph::partitioned::{partition_graph, PartitionedView};
use pasco_graph::{CsrGraph, NodeId};
use pasco_mc::walks::{reverse_walk_distributions_on, StepDistributions, WalkParams};
use pasco_solver::jacobi::{self, JacobiConfig, RowSource};
use rayon::prelude::*;
use std::sync::Arc;

/// One sparse row of the linear system, sorted by column.
type Row = Vec<(u32, f64)>;

/// The sharded single-box substrate: a range partition of the graph per
/// shard, shard-parallel builds, and source-routed queries.
pub struct ShardedEngine {
    view: PartitionedView,
    n: u32,
}

impl ShardedEngine {
    /// Partitions `graph` into at most `shards` range shards. The
    /// effective count is capped so that **every shard owns at least one
    /// node**: requesting 4 shards of a 5-node graph yields 3 shards of
    /// ⌈5/4⌉ = 2, 2 and 1 nodes rather than a fourth, empty shard.
    ///
    /// # Panics
    /// Panics when `shards == 0`; [`crate::CloudWalker::build`] rejects
    /// that with a typed error before reaching here.
    pub fn new(graph: &CsrGraph, shards: u32) -> Self {
        assert!(shards > 0, "need at least one shard");
        let n = graph.node_count();
        let chunk = n.max(1).div_ceil(shards.min(n.max(1)));
        let nshards = n.max(1).div_ceil(chunk);
        let partitioner = Partitioner::range(n, nshards);
        let parts = Arc::new(partition_graph(graph, &partitioner));
        Self { view: PartitionedView::new(parts, partitioner), n }
    }

    /// Number of shards actually materialised (each owns ≥ 1 node).
    pub fn shards(&self) -> usize {
        self.view.partitions().len()
    }

    /// Resident bytes of each shard's partition, in shard order — the
    /// per-shard breakdown behind [`SimRankEngine::memory_footprint`].
    pub fn shard_bytes(&self) -> Vec<u64> {
        self.view.partitions().iter().map(|gp| gp.memory_bytes()).collect()
    }

    /// The reverse-walk cohort of `source` through the routed view: the
    /// same kernel the local engine runs, so counts are bit-identical.
    /// Runs on the caller's thread — one cohort is one shard's unit of
    /// work in the partition-by-source decomposition, and parallelism
    /// comes from the sources (builds, batch APIs, concurrent clients).
    fn cohort(&self, source: NodeId, params: WalkParams, seed: u64) -> StepDistributions {
        reverse_walk_distributions_on(&self.view, source, params, seed)
    }

    /// Shard-parallel offline build: each shard walks and materialises the
    /// rows of its owned sources (its slice of the system) in parallel,
    /// then the sweeps run through [`jacobi::solve`] — the *same* solver
    /// call as the local engine, over shard-resident rows — so the
    /// produced diagonal is bitwise equal by construction.
    fn build_diagonal_impl(&self, cfg: &SimRankConfig) -> (DiagonalIndex, Vec<f64>, Option<u64>) {
        let n = self.n;
        let params = WalkParams::new(cfg.t, cfg.r);
        let strategy = cfg.resolve_ai_strategy(n);
        let b = vec![1.0; n as usize];
        let x0 = vec![1.0 - cfg.c; n as usize];
        let jacobi_cfg =
            JacobiConfig { iterations: cfg.l, tolerance: None, record_residuals: true };

        let (result, rows_bytes) = match strategy {
            AiStrategy::Store | AiStrategy::Auto { .. } => {
                let shard_rows: Vec<Vec<Row>> = self
                    .view
                    .partitions()
                    .par_iter()
                    .map(|gp| {
                        (gp.start..gp.end)
                            .into_par_iter()
                            .map(|i| ai_row(&self.cohort(i, params, cfg.seed), cfg.c))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let bytes =
                    shard_rows.iter().flatten().map(|r| 24 + 12 * r.len() as u64).sum::<u64>();
                let rows = ShardStoredRows { engine: self, shard_rows: &shard_rows };
                (jacobi::solve(&rows, &b, &x0, &jacobi_cfg), Some(bytes))
            }
            AiStrategy::Recompute => {
                let rows = ShardRecomputedRows { engine: self, params, seed: cfg.seed, c: cfg.c };
                (jacobi::solve(&rows, &b, &x0, &jacobi_cfg), None)
            }
        };
        (DiagonalIndex::new(result.x), result.residuals, rows_bytes)
    }

    /// Dense MCSS on the owning shard: the cohort stage, then the shared
    /// dense-MCSS kernel with every walk routed through the view.
    fn single_source_impl(&self, diag: &[f64], cfg: &SimRankConfig, i: NodeId) -> Vec<f64> {
        let dists = self.cohort(i, WalkParams::new(cfg.t, cfg.r_query), query_seed(cfg));
        single_source_from_dists_on(self.n as usize, &self.view, &dists, diag, cfg)
    }

    /// Sparse top-`k` MCSS: the owning shard accumulates the reached-node
    /// masses through the shared kernel, the candidates are split by
    /// owner, each shard ranks its own through [`rank_topk`], and the
    /// per-shard rankings are k-way merged with the identical comparator.
    /// A single global `rank_topk` would give the same answer (the tests
    /// assert exactly that); the split-rank-merge shape is deliberate —
    /// it is the distributed top-`k` plan, where each shard ranks locally
    /// and only `k` candidates ever cross the wire. [`topk_lists`] is the
    /// per-shard half; the RPC substrate runs it worker-side and merges
    /// on the coordinator with the very same [`merge_ranked`].
    fn single_source_topk_impl(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Vec<(NodeId, f64)> {
        merge_ranked(&topk_lists(&self.view, self.view.partitioner(), diag, cfg, i, k), k)
    }
}

/// The routed stage of the distributed top-`k` plan: simulate `i`'s
/// cohort on `view`, accumulate the sparse masses, split the candidates
/// by owning partition (per `partitioner`), and rank each split with
/// [`rank_topk`] — one already-sorted list per partition, ready for
/// [`merge_ranked`]. Generic over the adjacency source, so it is shared
/// verbatim by [`ShardedEngine`] (merge in the same call), the
/// distributed worker (lists cross the wire first), and the mmap-backed
/// engine (`view` is a `MappedStore`).
pub(crate) fn topk_lists<V: WalkAdjacency + ForwardSampler>(
    view: &V,
    partitioner: Partitioner,
    diag: &[f64],
    cfg: &SimRankConfig,
    i: NodeId,
    k: usize,
) -> Vec<Vec<(NodeId, f64)>> {
    let dists = reverse_walk_distributions_on(
        view,
        i,
        WalkParams::new(cfg.t, cfg.r_query),
        query_seed(cfg),
    );
    let acc = sparse_masses_on(view, &dists, diag, cfg);
    let mut by_shard: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); partitioner.parts() as usize];
    for (node, mass) in acc.iter() {
        by_shard[partitioner.owner(node) as usize].push((node, mass));
    }
    by_shard.into_par_iter().map(|entries| rank_topk(entries, i, k)).collect()
}

/// [`RowSource`] over rows materialised per shard: row `i` lives in the
/// shard owning node `i`. The solver's own parallel sweep then *is* the
/// shard-parallel sweep — rows never leave their shard.
struct ShardStoredRows<'a> {
    engine: &'a ShardedEngine,
    shard_rows: &'a [Vec<Row>],
}

impl RowSource for ShardStoredRows<'_> {
    fn dim(&self) -> usize {
        self.engine.n as usize
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        let owner = self.engine.view.partitioner().owner(i) as usize;
        let start = self.engine.view.partitions()[owner].start;
        row.clear();
        row.extend_from_slice(&self.shard_rows[owner][(i - start) as usize]);
    }
}

/// [`RowSource`] that regenerates rows from routed walks on demand — the
/// `Recompute` strategy on the sharded substrate. Identical rows to the
/// stored source because walk randomness is pure in
/// `(seed, source, walker, step)`.
struct ShardRecomputedRows<'a> {
    engine: &'a ShardedEngine,
    params: WalkParams,
    seed: u64,
    c: f64,
}

impl RowSource for ShardRecomputedRows<'_> {
    fn dim(&self) -> usize {
        self.engine.n as usize
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend(ai_row(&self.engine.cohort(i, self.params, self.seed), self.c));
    }
}

/// K-way merge of per-shard rankings, each already sorted by
/// [`ranking_cmp`]; picks the globally best head until `k` entries are out.
/// Equivalent to ranking the union through [`rank_topk`] because the
/// comparator is a total order over unique node ids. The distributed
/// coordinator merges its workers' [`topk_lists`] through this exact
/// function.
pub(crate) fn merge_ranked(lists: &[Vec<(NodeId, f64)>], k: usize) -> Vec<(NodeId, f64)> {
    let mut heads = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(k.min(lists.iter().map(Vec::len).sum()));
    while out.len() < k {
        let mut best: Option<usize> = None;
        for (s, list) in lists.iter().enumerate() {
            if heads[s] >= list.len() {
                continue;
            }
            best = match best {
                None => Some(s),
                Some(b) => {
                    if ranking_cmp(&list[heads[s]], &lists[b][heads[b]]).is_lt() {
                        Some(s)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            None => break,
            Some(b) => {
                out.push(lists[b][heads[b]]);
                heads[b] += 1;
            }
        }
    }
    out
}

impl SimRankEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError> {
        let strategy = cfg.resolve_ai_strategy(self.n);
        let (diag, residuals, rows_bytes) = self.build_diagonal_impl(cfg);
        Ok(BuildOutcome { diag, strategy, residuals, rows_bytes, cluster: None })
    }

    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError> {
        Ok(self.cohort(source, WalkParams::new(cfg.t, cfg.r_query), query_seed(cfg)))
    }

    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError> {
        if i == j {
            return Ok(1.0);
        }
        let params = WalkParams::new(cfg.t, cfg.r_query);
        let di = self.cohort(i, params, query_seed(cfg));
        let dj = self.cohort(j, params, query_seed(cfg));
        Ok(score_pair(&di, &dj, diag, cfg.c))
    }

    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError> {
        Ok(self.single_source_impl(diag, cfg, i))
    }

    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        Ok(self.single_source_topk_impl(diag, cfg, i, k))
    }

    fn cluster_report(&self) -> Option<ClusterReport> {
        None
    }

    fn memory_footprint(&self) -> EngineFootprint {
        EngineFootprint {
            per_worker_bytes: self.shard_bytes().into_iter().max().unwrap_or(0),
            partitioned: true,
        }
    }

    fn shard_footprints(&self) -> Option<Vec<u64>> {
        Some(self.shard_bytes())
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("nodes", &self.n)
            .field("shards", &self.shards())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::local;
    use crate::queries;
    use pasco_graph::generators;
    use pasco_graph::partitioned::GraphPartition;
    use pasco_graph::ReverseChainIndex;

    #[test]
    fn sharded_diagonal_matches_local_bitwise() {
        let g = generators::barabasi_albert(170, 3, 6);
        let cfg = SimRankConfig::fast().with_seed(33);
        for shards in [1u32, 3, 8] {
            let eng = ShardedEngine::new(&g, shards);
            let out_s = eng.build_diagonal(&cfg).unwrap();
            let out_l = local::build_diagonal(&g, &cfg);
            assert_eq!(out_s.diag, out_l.diag, "{shards} shards");
            assert_eq!(out_s.residuals, out_l.residuals, "{shards} shards");
            assert_eq!(out_s.rows_bytes, out_l.rows_bytes, "{shards} shards");
            assert!(out_s.cluster.is_none());
        }
    }

    #[test]
    fn sharded_recompute_strategy_matches_store() {
        let g = generators::rmat(8, 1_200, generators::RmatParams::default(), 3);
        let cfg = SimRankConfig::fast().with_seed(9);
        let eng = ShardedEngine::new(&g, 4);
        let store = eng.build_diagonal(&cfg.with_ai_strategy(AiStrategy::Store)).unwrap();
        let recompute = eng.build_diagonal(&cfg.with_ai_strategy(AiStrategy::Recompute)).unwrap();
        assert_eq!(store.diag, recompute.diag);
        assert!(store.rows_bytes.is_some());
        assert!(recompute.rows_bytes.is_none());
    }

    #[test]
    fn sharded_cohort_matches_local_cohort() {
        let g = generators::rmat(8, 1_500, generators::RmatParams::default(), 6);
        let cfg = SimRankConfig::fast();
        for shards in [1u32, 2, 5] {
            let eng = ShardedEngine::new(&g, shards);
            assert_eq!(
                SimRankEngine::query_cohort(&eng, &cfg, 9).unwrap(),
                queries::query_cohort(&g, &cfg, 9),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn sharded_queries_are_bit_identical_to_local() {
        let g = generators::barabasi_albert(130, 3, 2);
        let cfg = SimRankConfig::fast();
        let out = local::build_diagonal(&g, &cfg);
        let diag = out.diag.as_slice();
        let rci = ReverseChainIndex::build(&g);
        for shards in [1u32, 4] {
            let eng = ShardedEngine::new(&g, shards);
            assert_eq!(
                eng.single_pair(diag, &cfg, 4, 70).unwrap(),
                queries::single_pair(&g, diag, &cfg, 4, 70),
                "MCSP, {shards} shards"
            );
            assert_eq!(
                eng.single_source(diag, &cfg, 4).unwrap(),
                queries::single_source(&g, &rci, diag, &cfg, 4),
                "MCSS, {shards} shards"
            );
            assert_eq!(
                eng.single_source_topk(diag, &cfg, 4, 10).unwrap(),
                queries::single_source_topk(&g, &rci, diag, &cfg, 4, 10),
                "top-k, {shards} shards"
            );
        }
    }

    #[test]
    fn shard_count_caps_at_node_count() {
        let g = generators::cycle(3);
        let eng = ShardedEngine::new(&g, 16);
        assert_eq!(eng.shards(), 3);
        let fp = eng.memory_footprint();
        assert!(fp.partitioned);
        assert_eq!(eng.shard_footprints().unwrap().len(), 3);
    }

    #[test]
    fn every_shard_owns_at_least_one_node() {
        // Regression: ceil-division range partitioning used to leave empty
        // trailing shards (4 shards of a 5-node graph -> [2, 2, 1, 0]).
        for (n, shards) in [(5u32, 4u32), (7, 5), (9, 8), (3, 3), (100, 7)] {
            let g = generators::cycle(n);
            let eng = ShardedEngine::new(&g, shards);
            let owned: Vec<u32> = eng.view.partitions().iter().map(GraphPartition::len).collect();
            assert!(owned.iter().all(|&c| c > 0), "n={n} shards={shards}: {owned:?}");
            assert_eq!(owned.iter().sum::<u32>(), n);
            assert!(eng.shards() <= shards as usize);
        }
    }

    #[test]
    fn footprint_shrinks_with_shards() {
        let g = generators::rmat(10, 10_000, generators::RmatParams::default(), 3);
        let one = ShardedEngine::new(&g, 1).memory_footprint().per_worker_bytes;
        let eight = ShardedEngine::new(&g, 8).memory_footprint().per_worker_bytes;
        assert!(eight < one, "8 shards {eight} vs 1 shard {one}");
        let per: u64 = ShardedEngine::new(&g, 8).shard_footprints().unwrap().iter().sum();
        assert!(per >= eight);
    }

    #[test]
    fn merge_ranked_equals_global_ranking() {
        // Hand-built shard lists with a cross-shard tie: node ids break it.
        let lists =
            vec![vec![(0u32, 0.9), (2, 0.5), (4, 0.1)], vec![(5u32, 0.9), (1, 0.5), (3, 0.2)]];
        let merged = merge_ranked(&lists, 5);
        let all: Vec<(u32, f64)> = lists.concat();
        assert_eq!(merged, rank_topk(all, u32::MAX, 5));
        // Exhausting every list stops early.
        assert_eq!(merge_ranked(&lists, 100).len(), 6);
    }
}
