//! Out-of-core execution: walks served straight from a mapped shard
//! store.
//!
//! [`MappedEngine`] is the sixth substrate — the persistent/mmap engine
//! the [`SimRankEngine`] trait reserved a slot for. It holds no
//! adjacency in process memory at all: every lookup routes through a
//! [`pasco_store::MappedStore`], whose shards are read-only mappings of
//! `PASCOSH1` files, so
//!
//! * opening an index over a saved store is O(1) in the graph's edge
//!   volume (headers plus offset spines; the payload pages in lazily),
//! * graphs larger than RAM serve — the kernel pages shards in and out
//!   under memory pressure instead of the process OOMing, and
//! * a serving restart is a re-open, not a rebuild.
//!
//! Bit-identity with the resident engines is structural, the same
//! argument the sharded and distributed substrates make: queries and
//! builds run the *identical* generic kernels
//! ([`reverse_walk_distributions_on`],
//! [`crate::queries::single_source_from_dists_on`],
//! [`crate::queries::sparse_masses_on`], `topk_lists`) and walk
//! randomness is a pure function of `(seed, source, walker, step)` —
//! only the adjacency source differs, and the store serves the same
//! neighbour slices and sampling weights bit for bit
//! (`crates/store` pins that against [`PartitionedView`]).
//!
//! The one exception is forward-push MCSS, which needs the resident
//! [`CsrGraph`](pasco_graph::CsrGraph); [`crate::CloudWalker`] reports
//! it as [`QueryError::Unsupported`] on this backing.
//!
//! [`PartitionedView`]: pasco_graph::partitioned::PartitionedView

use crate::ai::ai_row;
use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::sharded::{merge_ranked, topk_lists};
use crate::engine::{BuildOutcome, EngineFootprint, SimRankEngine};
use crate::error::SimRankError;
use crate::queries::{query_seed, score_pair, single_source_from_dists_on};
use pasco_cluster::ClusterReport;
use pasco_graph::NodeId;
use pasco_mc::walks::{reverse_walk_distributions_on, StepDistributions, WalkParams};
use pasco_solver::jacobi::{self, JacobiConfig, RowSource};
use pasco_store::MappedStore;
use rayon::prelude::*;
use std::sync::Arc;

/// One sparse row of the linear system, sorted by column.
type Row = Vec<(u32, f64)>;

/// The out-of-core substrate: every walk step reads the mapped store.
pub struct MappedEngine {
    store: Arc<MappedStore>,
    n: u32,
}

impl MappedEngine {
    /// An engine over an already-opened store.
    pub fn new(store: Arc<MappedStore>) -> Self {
        let n = store.node_count();
        Self { store, n }
    }

    /// The store this engine serves from.
    pub fn store(&self) -> &Arc<MappedStore> {
        &self.store
    }

    /// The reverse-walk cohort of `source` through the store — the same
    /// kernel every other engine runs, so counts are bit-identical.
    fn cohort(&self, source: NodeId, params: WalkParams, seed: u64) -> StepDistributions {
        reverse_walk_distributions_on(&*self.store, source, params, seed)
    }

    /// The offline build over the mapped store. A store normally ships
    /// with its diagonal already on disk ([`MappedStore::compose_diag`]),
    /// so this runs only when a caller asks for a *fresh* build — e.g.
    /// re-indexing under a different config without rehydrating the CSR
    /// graph. Rows, sweeps, and therefore the diagonal are bitwise the
    /// resident engines' (same kernels, same solver, same row order).
    fn build_diagonal_impl(&self, cfg: &SimRankConfig) -> (DiagonalIndex, Vec<f64>, Option<u64>) {
        let n = self.n;
        let params = WalkParams::new(cfg.t, cfg.r);
        let strategy = cfg.resolve_ai_strategy(n);
        let b = vec![1.0; n as usize];
        let x0 = vec![1.0 - cfg.c; n as usize];
        let jacobi_cfg =
            JacobiConfig { iterations: cfg.l, tolerance: None, record_residuals: true };

        let (result, rows_bytes) = match strategy {
            AiStrategy::Store | AiStrategy::Auto { .. } => {
                let rows: Vec<Row> = (0..n)
                    .into_par_iter()
                    .map(|i| ai_row(&self.cohort(i, params, cfg.seed), cfg.c))
                    .collect();
                let bytes = rows.iter().map(|r| 24 + 12 * r.len() as u64).sum::<u64>();
                let source = FlatRows { rows: &rows };
                (jacobi::solve(&source, &b, &x0, &jacobi_cfg), Some(bytes))
            }
            AiStrategy::Recompute => {
                let source =
                    MappedRecomputedRows { engine: self, params, seed: cfg.seed, c: cfg.c };
                (jacobi::solve(&source, &b, &x0, &jacobi_cfg), None)
            }
        };
        (DiagonalIndex::new(result.x), result.residuals, rows_bytes)
    }
}

/// [`RowSource`] over rows materialised in node order.
struct FlatRows<'a> {
    rows: &'a [Row],
}

impl RowSource for FlatRows<'_> {
    fn dim(&self) -> usize {
        self.rows.len()
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend_from_slice(&self.rows[i as usize]);
    }
}

/// [`RowSource`] that regenerates rows from store-backed walks on demand
/// — the `Recompute` strategy without any resident rows at all. The
/// sweep's working set is then just the two dense vectors.
struct MappedRecomputedRows<'a> {
    engine: &'a MappedEngine,
    params: WalkParams,
    seed: u64,
    c: f64,
}

impl RowSource for MappedRecomputedRows<'_> {
    fn dim(&self) -> usize {
        self.engine.n as usize
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend(ai_row(&self.engine.cohort(i, self.params, self.seed), self.c));
    }
}

impl SimRankEngine for MappedEngine {
    fn name(&self) -> &'static str {
        "mapped"
    }

    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError> {
        let strategy = cfg.resolve_ai_strategy(self.n);
        let (diag, residuals, rows_bytes) = self.build_diagonal_impl(cfg);
        Ok(BuildOutcome { diag, strategy, residuals, rows_bytes, cluster: None })
    }

    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError> {
        Ok(self.cohort(source, WalkParams::new(cfg.t, cfg.r_query), query_seed(cfg)))
    }

    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError> {
        if i == j {
            return Ok(1.0);
        }
        let params = WalkParams::new(cfg.t, cfg.r_query);
        let di = self.cohort(i, params, query_seed(cfg));
        let dj = self.cohort(j, params, query_seed(cfg));
        Ok(score_pair(&di, &dj, diag, cfg.c))
    }

    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError> {
        let dists = self.cohort(i, WalkParams::new(cfg.t, cfg.r_query), query_seed(cfg));
        Ok(single_source_from_dists_on(self.n as usize, &*self.store, &dists, diag, cfg))
    }

    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        // The same split-rank-merge plan as the sharded engine, routed
        // by the store's partitioner over the store's shards.
        let lists = topk_lists(&*self.store, self.store.partitioner(), diag, cfg, i, k);
        Ok(merge_ranked(&lists, k))
    }

    fn cluster_report(&self) -> Option<ClusterReport> {
        None
    }

    fn memory_footprint(&self) -> EngineFootprint {
        // Mapped bytes, not resident ones: the kernel pages shards in
        // and out on demand, so the number reported here is the demand
        // *ceiling*, reached only if a query walks every edge.
        EngineFootprint {
            per_worker_bytes: self
                .store
                .shards()
                .iter()
                .map(|s| s.mapped_bytes())
                .max()
                .unwrap_or(0),
            partitioned: true,
        }
    }

    fn shard_footprints(&self) -> Option<Vec<u64>> {
        Some(self.store.shards().iter().map(|s| s.mapped_bytes()).collect())
    }
}

impl std::fmt::Debug for MappedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedEngine")
            .field("nodes", &self.n)
            .field("shards", &self.store.parts())
            .field("dir", &self.store.dir())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::local;
    use crate::engine::sharded::ShardedEngine;
    use pasco_graph::generators;
    use pasco_store::write_store;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pasco_mapped_engine_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine_over(g: &pasco_graph::CsrGraph, diag: &[f64], parts: u32, tag: &str) -> MappedEngine {
        let dir = scratch(&format!("{tag}_{parts}"));
        write_store(&dir, g, diag, parts).unwrap();
        MappedEngine::new(Arc::new(MappedStore::open(&dir).unwrap()))
    }

    #[test]
    fn mapped_queries_are_bit_identical_to_local_and_sharded() {
        let g = generators::barabasi_albert(140, 3, 4);
        let cfg = SimRankConfig::fast().with_seed(5);
        let out = local::build_diagonal(&g, &cfg);
        let diag = out.diag.as_slice();
        for parts in [1u32, 2, 4] {
            let eng = engine_over(&g, diag, parts, "bitid");
            let sharded = ShardedEngine::new(&g, parts);
            assert_eq!(
                eng.single_pair(diag, &cfg, 3, 77).unwrap(),
                sharded.single_pair(diag, &cfg, 3, 77).unwrap(),
                "MCSP, {parts} parts"
            );
            assert_eq!(
                eng.single_source(diag, &cfg, 3).unwrap(),
                sharded.single_source(diag, &cfg, 3).unwrap(),
                "MCSS, {parts} parts"
            );
            assert_eq!(
                eng.single_source_topk(diag, &cfg, 3, 9).unwrap(),
                sharded.single_source_topk(diag, &cfg, 3, 9).unwrap(),
                "top-k, {parts} parts"
            );
            assert_eq!(
                eng.query_cohort(&cfg, 3).unwrap(),
                sharded.query_cohort(&cfg, 3).unwrap(),
                "cohort, {parts} parts"
            );
        }
    }

    #[test]
    fn mapped_build_matches_local_bitwise() {
        let g = generators::rmat(8, 1_000, generators::RmatParams::default(), 2);
        let cfg = SimRankConfig::fast().with_seed(11);
        let out_l = local::build_diagonal(&g, &cfg);
        // The store's shipped diagonal is irrelevant to a fresh build.
        let eng = engine_over(&g, &vec![0.0; g.node_count() as usize], 3, "build");
        let out_m = eng.build_diagonal(&cfg).unwrap();
        assert_eq!(out_m.diag, out_l.diag);
        assert_eq!(out_m.residuals, out_l.residuals);
        assert_eq!(out_m.rows_bytes, out_l.rows_bytes);
        let recompute = eng.build_diagonal(&cfg.with_ai_strategy(AiStrategy::Recompute)).unwrap();
        assert_eq!(recompute.diag, out_l.diag);
        assert!(recompute.rows_bytes.is_none());
    }

    #[test]
    fn footprint_reports_mapped_shards() {
        let g = generators::cycle(60);
        let diag = vec![1.0; 60];
        let eng = engine_over(&g, &diag, 3, "footprint");
        let fp = eng.memory_footprint();
        assert!(fp.partitioned);
        let shards = eng.shard_footprints().unwrap();
        assert_eq!(shards.len(), 3);
        assert_eq!(fp.per_worker_bytes, shards.iter().copied().max().unwrap());
    }
}
