//! In-process execution: rayon over nodes, no cluster accounting.

use crate::ai::{ai_row, RecomputedRows, StoredRows};
use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::{BuildOutcome, EngineFootprint, SimRankEngine};
use crate::error::SimRankError;
use crate::queries;
use pasco_cluster::ClusterReport;
use pasco_graph::{CsrGraph, NodeId, ReverseChainIndex};
use pasco_mc::walks::{reverse_walk_distributions, StepDistributions, WalkParams};
use pasco_solver::jacobi::{self, JacobiConfig};
use rayon::prelude::*;
use std::sync::Arc;

/// The single-machine substrate: queries run on the caller's rayon pool
/// against the fully resident graph and sampling index.
pub struct LocalEngine {
    graph: Arc<CsrGraph>,
    rci: Arc<ReverseChainIndex>,
}

impl LocalEngine {
    /// An engine over a resident graph and its sampling index.
    pub fn new(graph: Arc<CsrGraph>, rci: Arc<ReverseChainIndex>) -> Self {
        Self { graph, rci }
    }
}

impl SimRankEngine for LocalEngine {
    fn name(&self) -> &'static str {
        "local"
    }

    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError> {
        Ok(build_diagonal(&self.graph, cfg))
    }

    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError> {
        Ok(queries::query_cohort(&self.graph, cfg, source))
    }

    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError> {
        Ok(queries::single_pair(&self.graph, diag, cfg, i, j))
    }

    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError> {
        Ok(queries::single_source(&self.graph, &self.rci, diag, cfg, i))
    }

    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        Ok(queries::single_source_topk(&self.graph, &self.rci, diag, cfg, i, k))
    }

    fn cluster_report(&self) -> Option<ClusterReport> {
        None
    }

    fn memory_footprint(&self) -> EngineFootprint {
        EngineFootprint {
            per_worker_bytes: self.graph.memory_bytes() + self.rci.memory_bytes(),
            partitioned: false,
        }
    }
}

impl std::fmt::Debug for LocalEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalEngine")
            .field("nodes", &self.graph.node_count())
            .finish_non_exhaustive()
    }
}

/// Builds the diagonal index in-process.
///
/// Walk phase: a cohort of `R` walkers per node, in parallel over nodes.
/// Solve phase: `L` parallel Jacobi sweeps on `A x = 1` starting from
/// `x⁰ = (1 − c)·1` (the diagonal of the *first-order* correction, a good
/// warm start).
pub fn build_diagonal(graph: &CsrGraph, cfg: &SimRankConfig) -> BuildOutcome {
    let n = graph.node_count();
    let params = WalkParams::new(cfg.t, cfg.r);
    let strategy = cfg.resolve_ai_strategy(n);
    let b = vec![1.0; n as usize];
    let x0 = vec![1.0 - cfg.c; n as usize];
    let jacobi_cfg = JacobiConfig { iterations: cfg.l, tolerance: None, record_residuals: true };

    let (result, rows_bytes) = match strategy {
        AiStrategy::Store | AiStrategy::Auto { .. } => {
            let rows: Vec<Vec<(u32, f64)>> = (0..n)
                .into_par_iter()
                .map(|i| ai_row(&reverse_walk_distributions(graph, i, params, cfg.seed), cfg.c))
                .collect();
            let rows = StoredRows::new(rows);
            let bytes = rows.memory_bytes();
            (jacobi::solve(&rows, &b, &x0, &jacobi_cfg), Some(bytes))
        }
        AiStrategy::Recompute => {
            let rows = RecomputedRows::new(graph, params, cfg.seed, cfg.c);
            (jacobi::solve(&rows, &b, &x0, &jacobi_cfg), None)
        }
    };
    BuildOutcome {
        diag: DiagonalIndex::new(result.x),
        strategy,
        residuals: result.residuals,
        rows_bytes,
        cluster: None,
    }
}

/// Builds the diagonal with an explicit, already-resolved strategy (used by
/// the ablation harness so `Auto` does not mask the comparison).
pub fn build_diagonal_with_strategy(
    graph: &CsrGraph,
    cfg: &SimRankConfig,
    strategy: AiStrategy,
) -> BuildOutcome {
    let cfg = cfg.with_ai_strategy(strategy);
    build_diagonal(graph, &cfg)
}

/// Convenience wrapper asserting both strategies agree bit-for-bit — the
/// guarantee that lets deployments choose purely on memory grounds.
pub fn strategies_agree(graph: &CsrGraph, cfg: &SimRankConfig) -> bool {
    let a = build_diagonal_with_strategy(graph, cfg, AiStrategy::Store);
    let b = build_diagonal_with_strategy(graph, cfg, AiStrategy::Recompute);
    a.diag == b.diag
}

/// Implements row-source selection without exposing solver types to
/// callers needing custom sweeps (convergence experiment sweeps `L`).
pub fn solve_with_iterations(
    graph: &CsrGraph,
    cfg: &SimRankConfig,
    iterations: usize,
) -> (DiagonalIndex, Vec<f64>) {
    let params = WalkParams::new(cfg.t, cfg.r);
    let n = graph.node_count();
    let rows: Vec<Vec<(u32, f64)>> = (0..n)
        .into_par_iter()
        .map(|i| ai_row(&reverse_walk_distributions(graph, i, params, cfg.seed), cfg.c))
        .collect();
    let rows = StoredRows::new(rows);
    let b = vec![1.0; n as usize];
    let x0 = vec![1.0 - cfg.c; n as usize];
    let result = jacobi::solve(
        &rows,
        &b,
        &x0,
        &JacobiConfig { iterations, tolerance: None, record_residuals: true },
    );
    (DiagonalIndex::new(result.x), result.residuals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    #[test]
    fn store_and_recompute_agree_bitwise() {
        let g = generators::barabasi_albert(150, 3, 6);
        let cfg = SimRankConfig::fast().with_seed(42);
        assert!(strategies_agree(&g, &cfg));
    }

    #[test]
    fn diagonal_values_are_plausible() {
        // x ∈ (0, 1]. A dangling node's row is exactly e_i (its walkers die
        // after step 0), so its diagonal is exactly 1; nodes with
        // in-neighbours carry later-step mass and need x < 1.
        let g = generators::barabasi_albert(300, 4, 8);
        let cfg = SimRankConfig::fast();
        let out = build_diagonal(&g, &cfg);
        let (min, mean, max) = out.diag.stats();
        assert!(min > 0.0, "min {min}");
        assert!(max <= 1.0 + 1e-9, "max {max}");
        assert!(mean > 1.0 - cfg.c && mean <= 1.0, "mean {mean}");
        for v in g.nodes() {
            if g.is_dangling(v) {
                assert!((out.diag.get(v) - 1.0).abs() < 1e-12, "dangling x[{v}]");
            }
        }
        assert_eq!(out.residuals.len(), cfg.l);
        assert!(out.cluster.is_none());
    }

    #[test]
    fn residuals_shrink_with_sweeps() {
        let g = generators::rmat(9, 3000, generators::RmatParams::default(), 9);
        let cfg = SimRankConfig::fast();
        let (_, residuals) = solve_with_iterations(&g, &cfg, 6);
        assert!(residuals.last().unwrap() < &residuals[0]);
        // By L = 3 the residual should be tiny relative to sweep 1 — the
        // paper's justification for L = 3.
        assert!(residuals[2] < residuals[0] * 0.1, "{residuals:?}");
    }

    #[test]
    fn mc_diagonal_close_to_exact_diagonal() {
        let g = generators::barabasi_albert(120, 3, 5);
        let cfg = SimRankConfig::default_paper().with_r(4_000).with_t(8).with_l(10);
        let out = build_diagonal(&g, &cfg);
        let exact = crate::exact::exact_diagonal(&g, cfg.c, cfg.t, 100);
        let worst = out
            .diag
            .as_slice()
            .iter()
            .zip(exact.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 0.05, "worst |x_mc - x_exact| = {worst}");
    }

    #[test]
    fn engine_trait_matches_free_functions() {
        let g = Arc::new(generators::barabasi_albert(130, 3, 2));
        let rci = Arc::new(ReverseChainIndex::build(&g));
        let cfg = SimRankConfig::fast().with_seed(12);
        let eng = LocalEngine::new(Arc::clone(&g), Arc::clone(&rci));
        let out = eng.build_diagonal(&cfg).unwrap();
        assert_eq!(out.diag, build_diagonal(&g, &cfg).diag);
        let diag = out.diag.as_slice();
        assert_eq!(
            eng.single_pair(diag, &cfg, 3, 90).unwrap(),
            queries::single_pair(&g, diag, &cfg, 3, 90)
        );
        assert_eq!(
            eng.single_source_topk(diag, &cfg, 3, 5).unwrap(),
            queries::single_source_topk(&g, &rci, diag, &cfg, 3, 5)
        );
        let fp = eng.memory_footprint();
        assert!(!fp.partitioned);
        assert!(fp.per_worker_bytes >= g.memory_bytes());
    }
}
