//! Execution engines: where CloudWalker's walks and sweeps actually run.
//!
//! The same algorithm executes in six places:
//!
//! * [`local`] — a rayon pool in-process (the single-machine reference);
//! * [`sharded`] — the graph range-partitioned across in-process shards,
//!   queries routed to the shard owning their source (the single-box
//!   analogue of partition-by-source parallel SimRank);
//! * [`broadcast`] — the simulated cluster with the graph **replicated** to
//!   every worker (the paper's faster model, bounded by per-worker RAM);
//! * [`rdd`] — the simulated cluster with the graph **partitioned** and
//!   walker state shuffled between steps (the paper's scalable model);
//! * [`distributed`] — real `pasco worker` processes over TCP: the build
//!   and every query routed to the worker owning its source through the
//!   envelope protocol, with real wire bytes in the cluster accounting;
//! * [`mapped`] — out-of-core execution over a mapped `PASCOSH1` shard
//!   store: no resident adjacency at all, O(1) restart, graphs larger
//!   than RAM.
//!
//! Each substrate implements the object-safe [`SimRankEngine`] trait, so
//! [`crate::CloudWalker`] holds a `Box<dyn SimRankEngine>` and never
//! branches on the execution mode in a query path; new substrates plug in
//! without touching query code (the mapped engine did exactly that).
//!
//! Because each walk step's randomness is a pure function of
//! `(seed, source, walker, step)`, all engines produce identical walker
//! trajectories; integration tests assert Local ≡ Sharded ≡ Broadcast ≡
//! RDD.

pub mod broadcast;
pub mod distributed;
pub mod local;
pub mod mapped;
pub mod rdd;
pub mod sharded;

pub use distributed::{DistributedEngine, ShardWorkerCore};
pub use local::LocalEngine;
pub use mapped::MappedEngine;
pub use sharded::ShardedEngine;

use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::error::SimRankError;
use pasco_cluster::{ClusterConfig, ClusterReport};
use pasco_graph::NodeId;
use pasco_mc::walks::StepDistributions;

/// Selects the execution engine for index construction and queries.
///
/// `Clone` but deliberately not `Copy`: the distributed variant carries
/// its worker address list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// In-process rayon execution.
    Local,
    /// Simulated cluster, Broadcasting model: the graph (plus the query
    /// sampling index) is replicated; fails with
    /// [`pasco_cluster::ClusterError::BroadcastExceedsMemory`] when it does
    /// not fit the per-worker budget.
    Broadcast(ClusterConfig),
    /// Simulated cluster, RDD model: the graph is range-partitioned and
    /// walker state is shuffled to the owner of its next node every step.
    Rdd(ClusterConfig),
    /// In-process sharded execution: the graph range-partitioned into
    /// `shards` shards, builds shard-parallel, queries routed to the shard
    /// owning their source. Bit-identical to [`ExecMode::Local`] at every
    /// shard count; per-shard memory shrinks as shards are added.
    Sharded {
        /// Number of shards (capped at the node count; must be positive).
        shards: u32,
    },
    /// Real RPC workers over TCP: the graph range-partitioned across the
    /// listed `pasco worker` processes, the offline walk phase and every
    /// query routed to the worker owning its source over the envelope
    /// protocol, top-`k` finished with the coordinator's k-way merge.
    /// Bit-identical to [`ExecMode::Local`] at every worker count.
    Distributed {
        /// Worker addresses (`host:port`), one partition per worker
        /// (capped at the node count; must be non-empty).
        workers: Vec<String>,
    },
}

/// Everything the offline phase produces, in one shape shared by every
/// engine (the engines used to return three ad-hoc tuples).
#[derive(Clone, Debug)]
pub struct BuildOutcome {
    /// The solved diagonal `x = [D₁₁ … D_nn]`.
    pub diag: DiagonalIndex,
    /// The row-provisioning strategy actually used.
    pub strategy: AiStrategy,
    /// `‖Ax − 1‖∞` after each Jacobi sweep.
    pub residuals: Vec<f64>,
    /// Stored-row footprint, if rows were materialised per node.
    pub rows_bytes: Option<u64>,
    /// Cluster accounting for the build (`None` on the local engine).
    pub cluster: Option<ClusterReport>,
}

/// Per-worker memory demanded by an engine at query time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineFootprint {
    /// Resident bytes one worker needs to serve queries (the whole graph
    /// for local/broadcast execution, the largest partition for RDD).
    pub per_worker_bytes: u64,
    /// True when the engine splits the graph across workers, i.e.
    /// `per_worker_bytes` shrinks as workers are added.
    pub partitioned: bool,
}

/// One execution substrate for CloudWalker's offline build and online
/// queries.
///
/// The trait is object-safe: [`crate::CloudWalker`] dispatches every query
/// through `Box<dyn SimRankEngine>`. Implementations must be deterministic
/// — for a fixed [`SimRankConfig`] every engine answers bitwise-identically
/// on the index and single-pair paths and within float-accumulation order
/// on single-source paths (the walks themselves are identical; only the
/// summation order differs).
pub trait SimRankEngine: Send + Sync + std::fmt::Debug {
    /// A short, stable substrate name (`"local"`, `"sharded"`,
    /// `"broadcast"`, `"rdd"`, `"distributed"`, `"mapped"`).
    fn name(&self) -> &'static str;

    /// Runs the offline phase: estimate the rows `aᵢ` by Monte-Carlo
    /// walks, then solve `A x = 1` with `L` Jacobi sweeps.
    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError>;

    /// Simulates the `R'`-walker query cohort of `source` on this
    /// substrate (bitwise identical across engines; cluster engines
    /// account the work in their [`ClusterReport`]). The serving layer's
    /// cohort cache sits on top of this.
    ///
    /// Queries are fallible at the trait so substrates with a failure
    /// plane of their own — the distributed engine loses a worker, the
    /// mapped engine cannot serve a query kind — surface a typed
    /// [`QueryError`] instead of panicking the serving path. The
    /// in-process engines (bounds already checked by the caller) never
    /// return `Err`.
    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError>;

    /// MCSP: the similarity of one node pair (raw estimate, not clamped).
    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError>;

    /// MCSS: the similarity of every node to `i` (raw estimates).
    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError>;

    /// Top-`k` MCSS: the `k` nodes most similar to `i` (query node
    /// excluded), sorted by descending score with node-id tie-breaks.
    /// Scores are clamped into `[0, 1]`.
    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError>;

    /// Cluster accounting so far (`None` on the local engine).
    fn cluster_report(&self) -> Option<ClusterReport>;

    /// Query-time memory demand per worker.
    fn memory_footprint(&self) -> EngineFootprint;

    /// Per-shard resident bytes, in shard order, for substrates that
    /// partition the graph in-process; `None` for unsharded substrates
    /// (the default).
    fn shard_footprints(&self) -> Option<Vec<u64>> {
        None
    }

    /// Live per-worker statistics for substrates backed by real worker
    /// processes; `None` elsewhere (the default). The distributed engine
    /// polls its workers over the wire: one entry per worker, in
    /// partition order, with an unreachable worker reported as its typed
    /// error rather than silently missing — a fleet-health report must
    /// not shrink when a worker dies.
    fn worker_stats(&self) -> Option<Vec<Result<crate::api::worker::WorkerStats, QueryError>>> {
        None
    }
}

/// Derives a top-`k` ranking from a dense score vector — shared by the
/// cluster engines, whose top-`k` runs on their own distributed
/// single-source path. Ranks through [`crate::queries::rank_topk`], the
/// same tail as the sparse local estimator, so output shapes and
/// tie-breaks match across engines.
pub(crate) fn topk_from_dense(scores: &[f64], i: NodeId, k: usize) -> Vec<(NodeId, f64)> {
    crate::queries::rank_topk(scores.iter().enumerate().map(|(v, &s)| (v as NodeId, s)), i, k)
}
