//! Execution engines: where CloudWalker's walks and sweeps actually run.
//!
//! The same algorithm executes in three places:
//!
//! * [`local`] — a rayon pool in-process (the single-machine reference);
//! * [`broadcast`] — the simulated cluster with the graph **replicated** to
//!   every worker (the paper's faster model, bounded by per-worker RAM);
//! * [`rdd`] — the simulated cluster with the graph **partitioned** and
//!   walker state shuffled between steps (the paper's scalable model).
//!
//! Because each walk step's randomness is a pure function of
//! `(seed, source, walker, step)`, all engines produce identical walker
//! trajectories; integration tests assert Local ≡ Broadcast ≡ RDD.

pub mod broadcast;
pub mod local;
pub mod rdd;

use pasco_cluster::ClusterConfig;

/// Selects the execution engine for index construction and queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// In-process rayon execution.
    Local,
    /// Simulated cluster, Broadcasting model: the graph (plus the query
    /// sampling index) is replicated; fails with
    /// [`pasco_cluster::ClusterError::BroadcastExceedsMemory`] when it does
    /// not fit the per-worker budget.
    Broadcast(ClusterConfig),
    /// Simulated cluster, RDD model: the graph is range-partitioned and
    /// walker state is shuffled to the owner of its next node every step.
    Rdd(ClusterConfig),
}
