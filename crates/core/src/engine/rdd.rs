//! RDD-model execution: partitioned graph, walker state shuffled per step.
//!
//! The scalable model of the paper's evaluation. The graph is
//! range-partitioned ([`pasco_graph::partitioned`]); a walker standing on
//! node `v` can only step on the partition owning `v`, so after every step
//! walker records are **shuffled** (really serialised and re-decoded — see
//! [`pasco_cluster::DistVec::shuffle`]) to their next owner. That per-step
//! communication is what makes RDD mode slower than Broadcasting in the
//! paper's tables, while per-worker memory stays `O(|G|/partitions)`.
//!
//! Row construction exploits a locality invariant: after the shuffle, *all*
//! walkers currently standing on node `v` — regardless of source — live in
//! `owner(v)`'s partition, so global per-`(source, position)` counts are
//! computable locally, then shipped to `owner(source)` where rows
//! accumulate. Because every random choice is a pure function of
//! `(seed, source, walker, step)`, the produced index is **bitwise equal**
//! to the Local and Broadcasting engines' output.

use crate::api::QueryError;
use crate::config::SimRankConfig;
use crate::diag::DiagonalIndex;
use crate::engine::{topk_from_dense, BuildOutcome, EngineFootprint, SimRankEngine};
use crate::error::SimRankError;
use crate::queries::{forward_seed, query_seed, score_pair, weighted_support};
use pasco_cluster::{Cluster, ClusterConfig, ClusterReport, DistVec};
use pasco_graph::partition::Partitioner;
use pasco_graph::partitioned::{partition_graph, GraphPartition};
use pasco_graph::{CsrGraph, NodeId};
use pasco_mc::counts::{CountMap, MassMap};
use pasco_mc::forward::forward_step_r;
use pasco_mc::rng::mix;
use pasco_mc::walks::{pick, step_u64, walker_key, StepDistributions};
use std::sync::Arc;

/// Reverse-walk walker record: `(rng key, source, position)`.
type IndexWalker = (u64, u32, u32);
/// Query-cohort walker record: `(rng key, position)`.
type QueryWalker = (u64, u32);
/// Row contribution: `(source, position, walker count)` at the current step.
type Contribution = (u32, u32, u64);
/// Forward (mass-carrying) walker: `(rng key, position, remaining steps, mass)`.
type ForwardWalker = (u64, u32, u32, f64);
/// A counting stage's output: the threaded-through walkers plus the
/// partition's contribution records.
type CountedPartition<W, C> = (Vec<W>, Vec<C>);

/// How many sources are walked concurrently during indexing; bounds live
/// walker state to `batch × R` records.
const SOURCE_BATCH: u32 = 1 << 16;

/// RDD-model engine: cluster plus the partitioned graph.
pub struct RddEngine {
    cluster: Cluster,
    parts: Arc<Vec<GraphPartition>>,
    partitioner: Partitioner,
    n: u32,
}

impl RddEngine {
    /// Partitions `graph` across the cluster's default partition count.
    pub fn new(cluster_cfg: ClusterConfig, graph: &CsrGraph) -> Self {
        let cluster = Cluster::new(cluster_cfg);
        let n = graph.node_count();
        let nparts = (cluster.config().default_partitions() as u32).min(n.max(1));
        let partitioner = Partitioner::range(n, nparts);
        let parts = Arc::new(partition_graph(graph, &partitioner));
        Self { cluster, parts, partitioner, n }
    }

    /// The underlying cluster (metrics access).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Largest single partition footprint — the RDD model's per-worker
    /// memory requirement (compare against the broadcast model's full
    /// `|G|`).
    pub fn max_partition_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.memory_bytes()).max().unwrap_or(0)
    }

    fn nparts(&self) -> usize {
        self.partitioner.parts() as usize
    }

    fn empty_parts<T>(&self) -> Vec<Vec<T>> {
        (0..self.nparts()).map(|_| Vec::new()).collect()
    }

    /// Offline indexing in the RDD model. Sources are processed in batches
    /// of 2¹⁶ (bounding live walker state); per batch, `R` walkers per source take `T`
    /// steps, shuffling both walker state and row contributions each step.
    /// Rows are then materialised per partition and `L` Jacobi sweeps run
    /// with the iterate `x` held by the driver (re-broadcast each sweep).
    fn build_diagonal_impl(&self, cfg: &SimRankConfig) -> (DiagonalIndex, Vec<f64>) {
        let n = self.n;
        let nparts = self.nparts();
        let parts = Arc::clone(&self.parts);
        let partitioner = self.partitioner;
        let r = cfg.r;
        let starts: Arc<Vec<u32>> = Arc::new(parts.iter().map(|gp| gp.start).collect());

        // rows[p][local_source] accumulates a_i; seeded with the t = 0 term
        // (all R walkers on the source: c⁰·(R/R)² = 1).
        let mut rows: Vec<Vec<MassMap>> = self
            .parts
            .iter()
            .map(|gp| {
                (gp.start..gp.end)
                    .map(|src| {
                        let mut m = MassMap::with_capacity(cfg.t * cfg.r as usize / 4 + 4);
                        m.add(src, 1.0);
                        m
                    })
                    .collect()
            })
            .collect();

        let mut batch_start = 0u32;
        while batch_start < n {
            let batch_end = batch_start.saturating_add(SOURCE_BATCH).min(n);
            // Launch R walkers per source, placed at owner(source).
            let mut initial: Vec<Vec<IndexWalker>> = self.empty_parts();
            for src in batch_start..batch_end {
                let p = partitioner.owner(src) as usize;
                for w in 0..r {
                    initial[p].push((walker_key(cfg.seed, src, w), src, src));
                }
            }
            let mut walkers = DistVec::from_partitions(initial);
            let mut ct = 1.0f64;
            for t in 1..=cfg.t {
                ct *= cfg.c;
                // Step: each partition advances walkers standing on its nodes.
                let parts_ref = Arc::clone(&parts);
                walkers = walkers.map_partitions(
                    &self.cluster,
                    "index/step",
                    move |pidx, batch: Vec<IndexWalker>| {
                        let gp = &parts_ref[pidx];
                        batch
                            .into_iter()
                            .filter_map(|(key, src, pos)| {
                                let ins = gp.in_neighbors(pos);
                                if ins.is_empty() {
                                    None
                                } else {
                                    let next = ins[pick(step_u64(key, t as u32), ins.len())];
                                    Some((key, src, next))
                                }
                            })
                            .collect()
                    },
                );
                // Shuffle to the owner of the new position.
                walkers =
                    walkers.shuffle(&self.cluster, "index/walkers", nparts, move |&(_, _, pos)| {
                        partitioner.owner(pos) as usize
                    });
                // All walkers on a node are now co-located: counts per
                // (source, position) are globally complete. The stage
                // threads the walker partitions through so the next step
                // reuses them without a copy.
                let counted: Vec<(Vec<IndexWalker>, Vec<Contribution>)> = self.cluster.run_stage(
                    "index/count",
                    walkers.into_partitions(),
                    |_, batch: Vec<IndexWalker>| {
                        let mut sorted: Vec<(u32, u32)> =
                            batch.iter().map(|&(_, src, pos)| (src, pos)).collect();
                        sorted.sort_unstable();
                        let mut out: Vec<Contribution> = Vec::new();
                        for (src, pos) in sorted {
                            match out.last_mut() {
                                Some(&mut (s, p, ref mut c)) if s == src && p == pos => *c += 1,
                                _ => out.push((src, pos, 1)),
                            }
                        }
                        (batch, out)
                    },
                );
                let mut walker_parts = Vec::with_capacity(nparts);
                let mut contrib_parts = Vec::with_capacity(nparts);
                for (w, c) in counted {
                    walker_parts.push(w);
                    contrib_parts.push(c);
                }
                walkers = DistVec::from_partitions(walker_parts);
                // Ship contributions to the owner of their source and fold
                // them into the row accumulators.
                let contribs = DistVec::from_partitions(contrib_parts).shuffle(
                    &self.cluster,
                    "index/contribs",
                    nparts,
                    move |&(src, _, _)| partitioner.owner(src) as usize,
                );
                let row_inputs: Vec<(Vec<MassMap>, Vec<Contribution>)> =
                    rows.drain(..).zip(contribs.into_partitions()).collect();
                let starts_ref = Arc::clone(&starts);
                rows = self.cluster.run_stage(
                    "index/rows",
                    row_inputs,
                    move |pidx, (mut row_maps, mut contribs)| {
                        // Merge counts that arrived from different partitions
                        // for the same (source, position) before squaring.
                        contribs.sort_unstable_by_key(|&(s, p, _)| (s, p));
                        let mut i = 0;
                        while i < contribs.len() {
                            let (src, pos, mut cnt) = contribs[i];
                            i += 1;
                            while i < contribs.len() && contribs[i].0 == src && contribs[i].1 == pos
                            {
                                cnt += contribs[i].2;
                                i += 1;
                            }
                            let p = cnt as f64 / r as f64;
                            let local = (src - starts_ref[pidx]) as usize;
                            row_maps[local].add(pos, ct * p * p);
                        }
                        row_maps
                    },
                );
            }
            batch_start = batch_end;
        }

        // Materialise sorted rows per partition.
        let finalized: Vec<Vec<Vec<(u32, f64)>>> =
            self.cluster.run_stage("index/finalize", rows, |_, maps: Vec<MassMap>| {
                maps.into_iter().map(|m| m.into_sorted_vec()).collect()
            });
        let finalized = Arc::new(finalized);

        // Jacobi sweeps with the driver-held iterate.
        let mut x = vec![1.0 - cfg.c; n as usize];
        let mut residuals = Vec::with_capacity(cfg.l);
        let ranges: Vec<(usize, u32, u32)> =
            self.parts.iter().enumerate().map(|(i, gp)| (i, gp.start, gp.end)).collect();
        for _ in 0..cfg.l {
            let x_ref = &x;
            let fin = Arc::clone(&finalized);
            let new_parts: Vec<Vec<f64>> =
                self.cluster.run_stage("index/jacobi", ranges.clone(), move |_, (pidx, lo, hi)| {
                    let rows = &fin[pidx];
                    (lo..hi)
                        .map(|i| {
                            let row = &rows[(i - lo) as usize];
                            let mut off = 0.0;
                            let mut diagv = 0.0;
                            for &(j, a) in row {
                                if j == i {
                                    diagv = a;
                                } else {
                                    off += a * x_ref[j as usize];
                                }
                            }
                            assert!(diagv != 0.0, "zero diagonal at row {i}");
                            (1.0 - off) / diagv
                        })
                        .collect()
                });
            x = new_parts.into_iter().flatten().collect();
            let x_ref = &x;
            let fin = Arc::clone(&finalized);
            let partial: Vec<f64> = self.cluster.run_stage(
                "index/residual",
                ranges.clone(),
                move |_, (pidx, lo, hi)| {
                    let rows = &fin[pidx];
                    let mut worst = 0.0f64;
                    for i in lo..hi {
                        let ax: f64 = rows[(i - lo) as usize]
                            .iter()
                            .map(|&(j, a)| a * x_ref[j as usize])
                            .sum();
                        worst = worst.max((ax - 1.0).abs());
                    }
                    worst
                },
            );
            residuals.push(partial.into_iter().fold(0.0, f64::max));
        }
        (DiagonalIndex::new(x), residuals)
    }

    /// Simulates the query cohort for `source` with per-step shuffles.
    /// Counts are bitwise identical to the other engines.
    pub fn query_cohort(&self, cfg: &SimRankConfig, source: NodeId) -> StepDistributions {
        let seed = query_seed(cfg);
        let nparts = self.nparts();
        let partitioner = self.partitioner;
        let parts = Arc::clone(&self.parts);

        let mut initial: Vec<Vec<QueryWalker>> = self.empty_parts();
        let home = partitioner.owner(source) as usize;
        for w in 0..cfg.r_query {
            initial[home].push((walker_key(seed, source, w), source));
        }
        let mut walkers = DistVec::from_partitions(initial);
        let mut counts: Vec<Vec<(NodeId, u64)>> = Vec::with_capacity(cfg.t + 1);
        counts.push(vec![(source, cfg.r_query as u64)]);
        for t in 1..=cfg.t {
            let parts_ref = Arc::clone(&parts);
            walkers = walkers.map_partitions(
                &self.cluster,
                "query/step",
                move |pidx, batch: Vec<QueryWalker>| {
                    let gp = &parts_ref[pidx];
                    batch
                        .into_iter()
                        .filter_map(|(key, pos)| {
                            let ins = gp.in_neighbors(pos);
                            if ins.is_empty() {
                                None
                            } else {
                                Some((key, ins[pick(step_u64(key, t as u32), ins.len())]))
                            }
                        })
                        .collect()
                },
            );
            walkers = walkers.shuffle(&self.cluster, "query/walkers", nparts, move |&(_, pos)| {
                partitioner.owner(pos) as usize
            });
            // Per-partition histograms cover disjoint node ranges; merging
            // is a concatenation + sort. The stage threads the walker
            // partitions through for the next step.
            let counted: Vec<CountedPartition<QueryWalker, (u32, u64)>> = self.cluster.run_stage(
                "query/count",
                walkers.into_partitions(),
                |_, batch: Vec<QueryWalker>| {
                    let mut m = CountMap::with_capacity(batch.len());
                    for &(_, pos) in &batch {
                        m.add(pos, 1);
                    }
                    let hist = m.into_sorted_vec();
                    (batch, hist)
                },
            );
            let mut walker_parts = Vec::with_capacity(counted.len());
            let mut merged: Vec<(NodeId, u64)> = Vec::new();
            for (w, hist) in counted {
                walker_parts.push(w);
                merged.extend(hist);
            }
            walkers = DistVec::from_partitions(walker_parts);
            merged.sort_unstable_by_key(|&(k, _)| k);
            counts.push(merged);
        }
        StepDistributions { source, walkers: cfg.r_query, counts }
    }

    /// MCSS in the RDD model: the cohort stage, then all `T` forward-walk
    /// waves launched together, each carrying its remaining step budget so
    /// one shuffled pass per global step retires wave `t` at step `t`.
    fn single_source_impl(&self, diag: &[f64], cfg: &SimRankConfig, i: NodeId) -> Vec<f64> {
        let dists = self.query_cohort(cfg, i);
        let n = self.n as usize;
        let nparts = self.nparts();
        let partitioner = self.partitioner;
        let parts = Arc::clone(&self.parts);
        let mut out = vec![0.0f64; n];

        // Launch every wave: wave t starts with mass cᵗ·y_k/R_f and must
        // take exactly t steps.
        let mut initial: Vec<Vec<ForwardWalker>> = self.empty_parts();
        let mut ct = 1.0f64;
        for t in 0..=cfg.t {
            let y = weighted_support(&dists, t, diag);
            if t == 0 {
                for &(k, m) in &y {
                    out[k as usize] += ct * m;
                }
            } else {
                let seed = forward_seed(cfg, i, t);
                for (k, yk, nk) in crate::queries::forward_allocation(&y, cfg.r_forward) {
                    let per = ct * yk / nk as f64;
                    let p = partitioner.owner(k) as usize;
                    for w in 0..nk {
                        let key = mix(&[seed, k as u64, w as u64, t as u64]);
                        initial[p].push((key, k, t as u32, per));
                    }
                }
            }
            ct *= cfg.c;
        }

        let mut walkers = DistVec::from_partitions(initial);
        for s in 1..=cfg.t as u32 {
            if walkers.is_empty() {
                break;
            }
            // Step every active walker; retire those that finish this step.
            let parts_ref = Arc::clone(&parts);
            let stepped: Vec<CountedPartition<ForwardWalker, (u32, f64)>> = self.cluster.run_stage(
                "query/forward-step",
                walkers.into_partitions(),
                move |pidx, batch| {
                    let gp = &parts_ref[pidx];
                    let mut active = Vec::with_capacity(batch.len());
                    let mut retired: Vec<(u32, f64)> = Vec::new();
                    for (key, pos, remaining, mass) in batch {
                        let w = gp.outflow(pos);
                        if w == 0.0 {
                            continue; // mass drops off the graph
                        }
                        // `outflow(pos) > 0` (checked above) implies at
                        // least one out-edge, so the sample always lands.
                        let next = gp
                            .sample_out(pos, forward_step_r(key, s))
                            // pasco-lint: allow(panic-reachable-in-serving)
                            .expect("outflow > 0 implies out-edges");
                        let mass = mass * w;
                        if remaining == 1 {
                            retired.push((next, mass));
                        } else {
                            active.push((key, next, remaining - 1, mass));
                        }
                    }
                    (active, retired)
                },
            );
            let mut active_parts = Vec::with_capacity(nparts);
            for (active, retired) in stepped {
                active_parts.push(active);
                for (node, mass) in retired {
                    out[node as usize] += mass;
                }
            }
            walkers = DistVec::from_partitions(active_parts).shuffle(
                &self.cluster,
                "query/forward",
                nparts,
                move |&(_, pos, _, _)| partitioner.owner(pos) as usize,
            );
        }
        out[i as usize] = 1.0;
        out
    }
}

impl SimRankEngine for RddEngine {
    fn name(&self) -> &'static str {
        "rdd"
    }

    fn build_diagonal(&self, cfg: &SimRankConfig) -> Result<BuildOutcome, SimRankError> {
        let strategy = cfg.resolve_ai_strategy(self.n);
        let (diag, residuals) = self.build_diagonal_impl(cfg);
        Ok(BuildOutcome {
            diag,
            strategy,
            residuals,
            rows_bytes: None,
            cluster: Some(self.cluster.report()),
        })
    }

    fn query_cohort(
        &self,
        cfg: &SimRankConfig,
        source: NodeId,
    ) -> Result<StepDistributions, QueryError> {
        // Resolves to the inherent shuffled-stage implementation.
        Ok(RddEngine::query_cohort(self, cfg, source))
    }

    fn single_pair(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        j: NodeId,
    ) -> Result<f64, QueryError> {
        if i == j {
            return Ok(1.0);
        }
        let di = RddEngine::query_cohort(self, cfg, i);
        let dj = RddEngine::query_cohort(self, cfg, j);
        Ok(score_pair(&di, &dj, diag, cfg.c))
    }

    fn single_source(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
    ) -> Result<Vec<f64>, QueryError> {
        Ok(self.single_source_impl(diag, cfg, i))
    }

    fn single_source_topk(
        &self,
        diag: &[f64],
        cfg: &SimRankConfig,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        let scores = self.single_source_impl(diag, cfg, i);
        Ok(topk_from_dense(&scores, i, k))
    }

    fn cluster_report(&self) -> Option<ClusterReport> {
        Some(self.cluster.report())
    }

    fn memory_footprint(&self) -> EngineFootprint {
        EngineFootprint { per_worker_bytes: self.max_partition_bytes(), partitioned: true }
    }
}

impl std::fmt::Debug for RddEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RddEngine")
            .field("nodes", &self.n)
            .field("partitions", &self.nparts())
            .field("cluster", &self.cluster.config())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::local;
    use pasco_graph::generators;
    use pasco_graph::ReverseChainIndex;

    fn engine(g: &CsrGraph, workers: usize) -> RddEngine {
        RddEngine::new(ClusterConfig::local(workers), g)
    }

    #[test]
    fn rdd_diagonal_matches_local_bitwise() {
        let g = generators::barabasi_albert(180, 3, 4);
        let cfg = SimRankConfig::fast().with_seed(21);
        let eng = engine(&g, 3);
        let out_r = eng.build_diagonal(&cfg).unwrap();
        let out_l = local::build_diagonal(&g, &cfg);
        assert_eq!(out_r.diag, out_l.diag, "RDD D must equal local D bitwise");
        assert_eq!(out_r.residuals, out_l.residuals);
        assert!(out_r.cluster.is_some());
    }

    #[test]
    fn rdd_cohort_matches_local_cohort() {
        let g = generators::rmat(8, 1500, generators::RmatParams::default(), 6);
        let cfg = SimRankConfig::fast();
        let eng = engine(&g, 4);
        assert_eq!(eng.query_cohort(&cfg, 9), crate::queries::query_cohort(&g, &cfg, 9));
    }

    #[test]
    fn rdd_queries_match_local() {
        let g = generators::barabasi_albert(120, 3, 2);
        let cfg = SimRankConfig::fast();
        let eng = engine(&g, 3);
        let out = local::build_diagonal(&g, &cfg);
        let diag = out.diag.as_slice();

        assert_eq!(
            eng.single_pair(diag, &cfg, 4, 70).unwrap(),
            crate::queries::single_pair(&g, diag, &cfg, 4, 70),
            "MCSP bitwise"
        );
        let rci = ReverseChainIndex::build(&g);
        let ss_r = eng.single_source(diag, &cfg, 4).unwrap();
        let ss_l = crate::queries::single_source(&g, &rci, diag, &cfg, 4);
        for (idx, (a, b)) in ss_r.iter().zip(&ss_l).enumerate() {
            assert!((a - b).abs() < 1e-12, "MCSS node {idx}: {a} vs {b}");
        }
    }

    #[test]
    fn rdd_shuffles_are_accounted() {
        let g = generators::barabasi_albert(100, 3, 8);
        let cfg = SimRankConfig::fast();
        let eng = engine(&g, 2);
        let _ = eng.build_diagonal(&cfg).unwrap();
        let report = eng.cluster().report();
        assert!(report.shuffle_bytes > 0, "RDD indexing must shuffle");
        assert!(report.shuffle_records > 0);
        // walker + contribution shuffles per step
        assert!(report.shuffles >= 2 * cfg.t);
    }

    #[test]
    fn max_partition_is_smaller_than_graph() {
        let g = generators::rmat(10, 10_000, generators::RmatParams::default(), 3);
        let eng = engine(&g, 4);
        assert!(eng.max_partition_bytes() < g.memory_bytes());
    }
}
