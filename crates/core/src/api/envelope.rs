//! The versioned wire envelope: every message a PASCO network peer sends
//! is one [`Envelope`] — a fixed 20-byte header (magic, protocol version,
//! frame kind, flags, request id, payload length) followed by a
//! length-prefixed payload encoded with [`WireCodec`].
//!
//! The envelope is what makes [`super::wire`] *transport-ready*:
//!
//! * **Versioning** — the header carries [`PROTOCOL_VERSION`]; a peer
//!   speaking a different version is rejected at the first frame, before
//!   any payload is interpreted.
//! * **Pipelining** — every request frame carries a client-chosen
//!   `request_id`, and responses echo it, so a client may keep many
//!   requests in flight and match answers out of order.
//! * **First-class errors** — a [`QueryError`] travels back as a
//!   [`FrameKind::Error`] frame tagged with the failing request's id,
//!   instead of dying at the process boundary. The connection stays
//!   usable.
//! * **Hostile-input safety** — the payload length is validated against
//!   both the frame-size limit and (when decoding from a buffer) the
//!   bytes actually present *before* any allocation, so a corrupt or
//!   malicious header cannot trigger an OOM-sized reservation.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field        value
//!      0     4  magic        b"PSCO"            (0x50 0x53 0x43 0x4F)
//!      4     2  version      u16 LE, currently 1
//!      6     1  kind         FrameKind tag
//!      7     1  flags        reserved, must be 0 in version 1
//!      8     8  request_id   u64 LE (0 for control frames)
//!     16     4  payload_len  u32 LE
//!     20     …  payload      payload_len bytes (WireCodec encoding)
//! ```
//!
//! The handshake is one round trip: the client opens with an empty
//! [`FrameKind::Hello`]; the server answers [`FrameKind::HelloAck`]
//! carrying a [`ServerInfo`] (graph size + the server's frame-size
//! limit). A client closes a session (and, for `pasco serve`, drains the
//! whole server) with [`FrameKind::Shutdown`]; the server acknowledges
//! with [`FrameKind::Goodbye`] after every in-flight response has been
//! written.
//!
//! ## Worker-control frames
//!
//! The distributed substrate rides the same envelope: kinds
//! [`FrameKind::LoadPartition`] through [`FrameKind::WorkerStats`] carry
//! the coordinator ⇄ worker protocol (payloads in [`super::worker`]).
//! Extending the *kind space* is the envelope's backward-compatible
//! evolution path that the version field guards: a version-1 peer that
//! does not serve workers rejects the unknown kind and drops the
//! connection, while a version bump remains reserved for changes that
//! alter the meaning of existing frames.

use super::wire::{WireCodec, WireError};
use super::{QueryError, QueryRequest, QueryResponse};
use bytes::{Buf, BufMut};
use std::fmt;

/// First four bytes of every frame: `b"PSCO"`.
pub const MAGIC: [u8; 4] = *b"PSCO";

/// The protocol version this build speaks. A peer announcing any other
/// version is rejected with [`FrameError::UnsupportedVersion`].
pub const PROTOCOL_VERSION: u16 = 1;

/// Fixed size of the envelope header in bytes.
pub const HEADER_LEN: usize = 20;

/// Default frame-size limit: a payload larger than this is rejected
/// before it is read or allocated. Generous enough for dense
/// single-source rows over multi-million-node graphs, small enough that
/// a hostile header cannot reserve gigabytes.
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

/// What a frame *is* — the header's kind tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: opens a session. Empty payload (the version is
    /// already in the header).
    Hello = 0,
    /// Server → client: accepts the session; payload is [`ServerInfo`].
    HelloAck = 1,
    /// Client → server: one [`QueryRequest`] payload, tagged with a
    /// client-chosen request id.
    Request = 2,
    /// Server → client: the [`QueryResponse`] payload for the request
    /// with the echoed id.
    Response = 3,
    /// Server → client: the [`QueryError`] payload for the request with
    /// the echoed id — typed failures cross the wire, they do not close
    /// the connection.
    Error = 4,
    /// Client → server: drain and stop. The server finishes every
    /// in-flight request of the connection, answers [`FrameKind::
    /// Goodbye`], and (for a whole-server shutdown) stops accepting.
    Shutdown = 5,
    /// Server → client: the connection is closing cleanly (shutdown
    /// acknowledged, or the server is draining). Empty payload.
    Goodbye = 6,
    /// Coordinator → worker: one graph partition to load
    /// ([`super::worker::LoadPartition`]); the worker echoes the kind
    /// back with a [`super::worker::LoadAck`] payload. Every worker
    /// receives every partition (walkers wander across partition
    /// boundaries); the `owned_part` field of the payload tells the
    /// worker which partition's sources it serves.
    LoadPartition = 7,
    /// Coordinator → worker: run the shard-local offline build
    /// ([`super::worker::BuildShard`]); the worker echoes the kind back
    /// with its owned rows ([`super::worker::BuildShardReply`]).
    BuildShard = 8,
    /// Coordinator → worker: one routed query
    /// ([`super::worker::ShardQuery`]); the worker echoes the kind back
    /// with a [`super::QueryResponse`] payload.
    ShardQuery = 9,
    /// Coordinator → worker: the sparse top-`k` plan
    /// ([`super::worker::ShardTopK`]); the worker echoes the kind back
    /// with per-partition rankings ([`super::worker::ShardTopKReply`])
    /// for the coordinator's k-way merge.
    ShardTopK = 10,
    /// Coordinator → worker: report runtime statistics (empty request
    /// payload); the worker echoes the kind back with a
    /// [`super::worker::WorkerStats`] payload.
    WorkerStats = 11,
    /// Coordinator → worker: map an on-disk shard store in place
    /// ([`super::worker::LoadStore`]) instead of receiving partitions
    /// over the wire; the worker echoes the kind back with a
    /// [`super::worker::LoadAck`] payload. Requires the store directory
    /// to be reachable on the worker's filesystem (shared storage or a
    /// prior copy) — the whole point is that the `O(E)` adjacency bytes
    /// never cross the wire.
    LoadStore = 12,
}

impl FrameKind {
    fn from_u8(kind: u8) -> Option<Self> {
        Some(match kind {
            0 => FrameKind::Hello,
            1 => FrameKind::HelloAck,
            2 => FrameKind::Request,
            3 => FrameKind::Response,
            4 => FrameKind::Error,
            5 => FrameKind::Shutdown,
            6 => FrameKind::Goodbye,
            7 => FrameKind::LoadPartition,
            8 => FrameKind::BuildShard,
            9 => FrameKind::ShardQuery,
            10 => FrameKind::ShardTopK,
            11 => FrameKind::WorkerStats,
            12 => FrameKind::LoadStore,
            _ => return None,
        })
    }
}

/// A malformed or out-of-contract frame. Everything here is fatal to the
/// connection that produced it: after a framing violation the byte
/// stream cannot be trusted to resynchronise, so peers close it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`] — the peer is not
    /// speaking this protocol at all.
    BadMagic {
        /// The four bytes actually read.
        found: [u8; 4],
    },
    /// Streaming fast-reject: the very first byte of a frame was not
    /// the first magic byte, so the peer is not speaking this protocol
    /// and the transport can drop it without waiting for (or trusting)
    /// a full header to arrive.
    NotAFrame {
        /// The first byte actually read.
        first: u8,
    },
    /// The peer speaks a different protocol version.
    UnsupportedVersion {
        /// The version the peer announced.
        found: u16,
    },
    /// A kind tag matching no [`FrameKind`].
    UnknownKind {
        /// The unrecognised tag.
        kind: u8,
    },
    /// Non-zero reserved flags (version 1 defines none).
    NonZeroFlags {
        /// The flag byte actually read.
        flags: u8,
    },
    /// The header announces a payload larger than the negotiated
    /// frame-size limit. Rejected before any allocation.
    Oversize {
        /// The announced payload length.
        len: u32,
        /// The limit in force.
        max: u32,
    },
    /// The buffer ended before the announced frame was complete.
    Truncated,
    /// The envelope was well-formed but its payload was not a valid
    /// encoding of the expected type.
    Payload(WireError),
    /// A frame of the wrong kind for the protocol state (e.g. a
    /// [`FrameKind::Response`] before the handshake finished).
    UnexpectedKind {
        /// The kind that arrived.
        got: FrameKind,
        /// What the state machine was waiting for.
        expected: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad magic {found:02x?} (want b\"PSCO\")"),
            FrameError::NotAFrame { first } => {
                write!(f, "first byte {first:#04x} is not the start of a frame")
            }
            FrameError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            FrameError::NonZeroFlags { flags } => {
                write!(f, "non-zero reserved flags {flags:#04x} in a version-1 frame")
            }
            FrameError::Oversize { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Payload(e) => write!(f, "undecodable frame payload: {e}"),
            FrameError::UnexpectedKind { got, expected } => {
                write!(f, "unexpected {got:?} frame (expected {expected})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Payload(e)
    }
}

/// The decoded fixed-size header of a frame: everything a transport
/// needs to know before touching the payload bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnvelopeHeader {
    /// What the frame is.
    pub kind: FrameKind,
    /// The request id this frame belongs to (0 for control frames).
    pub request_id: u64,
    /// How many payload bytes follow the header.
    pub payload_len: u32,
}

impl EnvelopeHeader {
    /// Parses and validates exactly [`HEADER_LEN`] bytes: magic, version,
    /// kind, reserved flags, and the payload length against `max_frame` —
    /// all *before* the caller reads or allocates for the payload.
    pub fn decode(bytes: &[u8; HEADER_LEN], max_frame: u32) -> Result<Self, FrameError> {
        let mut buf: &[u8] = bytes;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(FrameError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([buf.get_u8(), buf.get_u8()]);
        if version != PROTOCOL_VERSION {
            return Err(FrameError::UnsupportedVersion { found: version });
        }
        let kind_byte = buf.get_u8();
        let kind =
            FrameKind::from_u8(kind_byte).ok_or(FrameError::UnknownKind { kind: kind_byte })?;
        let flags = buf.get_u8();
        if flags != 0 {
            return Err(FrameError::NonZeroFlags { flags });
        }
        let request_id = buf.get_u64_le();
        let payload_len = buf.get_u32_le();
        if payload_len > max_frame {
            return Err(FrameError::Oversize { len: payload_len, max: max_frame });
        }
        Ok(EnvelopeHeader { kind, request_id, payload_len })
    }

    /// Appends the 20-byte header encoding to `buf`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_slice(&MAGIC);
        buf.put_slice(&PROTOCOL_VERSION.to_le_bytes());
        buf.put_u8(self.kind as u8);
        buf.put_u8(0); // reserved flags
        buf.put_u64_le(self.request_id);
        buf.put_u32_le(self.payload_len);
    }
}

/// One complete frame: a validated header plus its raw payload bytes.
///
/// Payloads stay opaque at this layer — [`Envelope::decode_request`] /
/// [`Envelope::decode_response`] / [`Envelope::decode_error`] interpret
/// them on demand, so a server can route on the header without paying
/// for a decode it may hand to a worker thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// What the frame is.
    pub kind: FrameKind,
    /// The request id this frame belongs to (0 for control frames).
    pub request_id: u64,
    /// The raw payload bytes (a [`WireCodec`] encoding, or empty for
    /// control frames).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// The client's opening frame (empty payload).
    pub fn hello() -> Self {
        Envelope { kind: FrameKind::Hello, request_id: 0, payload: Vec::new() }
    }

    /// The server's handshake answer carrying its [`ServerInfo`].
    pub fn hello_ack(info: &ServerInfo) -> Self {
        Envelope { kind: FrameKind::HelloAck, request_id: 0, payload: info.to_bytes() }
    }

    /// A request frame: `req` encoded under client-chosen id `id`.
    pub fn request(id: u64, req: &QueryRequest) -> Self {
        Envelope { kind: FrameKind::Request, request_id: id, payload: req.to_bytes() }
    }

    /// A response frame echoing the request's id.
    pub fn response(id: u64, resp: &QueryResponse) -> Self {
        Envelope { kind: FrameKind::Response, request_id: id, payload: resp.to_bytes() }
    }

    /// An error frame: the typed [`QueryError`] of request `id`.
    pub fn error(id: u64, err: &QueryError) -> Self {
        Envelope { kind: FrameKind::Error, request_id: id, payload: err.to_bytes() }
    }

    /// The drain-and-stop control frame (empty payload).
    pub fn shutdown() -> Self {
        Envelope { kind: FrameKind::Shutdown, request_id: 0, payload: Vec::new() }
    }

    /// The clean-close control frame (empty payload).
    pub fn goodbye() -> Self {
        Envelope { kind: FrameKind::Goodbye, request_id: 0, payload: Vec::new() }
    }

    /// A worker-control frame: `payload` (already [`WireCodec`]-encoded)
    /// under one of the worker kinds ([`FrameKind::LoadPartition`] …
    /// [`FrameKind::WorkerStats`]). Requests and their replies share the
    /// kind; the direction and the echoed `id` disambiguate.
    pub fn worker(kind: FrameKind, id: u64, payload: &impl WireCodec) -> Self {
        Envelope { kind, request_id: id, payload: payload.to_bytes() }
    }

    /// This frame's header.
    pub fn header(&self) -> EnvelopeHeader {
        EnvelopeHeader {
            kind: self.kind,
            request_id: self.request_id,
            payload_len: self.payload.len() as u32,
        }
    }

    /// Exact encoded size: header plus payload.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Encodes header + payload into a fresh, exactly-sized buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.header().encode(&mut buf);
        buf.put_slice(&self.payload);
        buf
    }

    /// Decodes one frame from the front of `bytes`, returning it and how
    /// many bytes it consumed. The payload length is validated against
    /// both `max_frame` and the bytes actually present before the payload
    /// is copied, so a hostile header cannot trigger an oversized
    /// allocation.
    pub fn decode(bytes: &[u8], max_frame: u32) -> Result<(Self, usize), FrameError> {
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let mut head = [0u8; HEADER_LEN];
        head.copy_from_slice(&bytes[..HEADER_LEN]);
        let header = EnvelopeHeader::decode(&head, max_frame)?;
        let len = header.payload_len as usize;
        let rest = &bytes[HEADER_LEN..];
        if rest.len() < len {
            return Err(FrameError::Truncated);
        }
        let env = Envelope {
            kind: header.kind,
            request_id: header.request_id,
            payload: rest[..len].to_vec(),
        };
        Ok((env, HEADER_LEN + len))
    }

    /// Decodes a buffer that must hold exactly one frame.
    pub fn from_bytes(bytes: &[u8], max_frame: u32) -> Result<Self, FrameError> {
        let (env, used) = Self::decode(bytes, max_frame)?;
        if used == bytes.len() {
            Ok(env)
        } else {
            Err(FrameError::Payload(WireError::TrailingBytes { remaining: bytes.len() - used }))
        }
    }

    /// Interprets the payload as a [`QueryRequest`].
    pub fn decode_request(&self) -> Result<QueryRequest, FrameError> {
        Ok(QueryRequest::from_bytes(&self.payload)?)
    }

    /// Interprets the payload as a [`QueryResponse`].
    pub fn decode_response(&self) -> Result<QueryResponse, FrameError> {
        Ok(QueryResponse::from_bytes(&self.payload)?)
    }

    /// Interprets the payload as a [`QueryError`].
    pub fn decode_error(&self) -> Result<QueryError, FrameError> {
        Ok(QueryError::from_bytes(&self.payload)?)
    }

    /// Interprets the payload as a [`ServerInfo`].
    pub fn decode_server_info(&self) -> Result<ServerInfo, FrameError> {
        Ok(ServerInfo::from_bytes(&self.payload)?)
    }
}

/// What a server tells a client in its [`FrameKind::HelloAck`]: enough to
/// pre-validate requests client-side and to stay under the server's
/// frame-size limit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerInfo {
    /// How many nodes the served graph has — the bound every node id in
    /// a request must respect.
    pub node_count: u32,
    /// The largest frame payload the server accepts.
    pub max_frame_bytes: u32,
}

impl WireCodec for ServerInfo {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.node_count);
        buf.put_u32_le(self.max_frame_bytes);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "ServerInfo";
        Ok(ServerInfo {
            node_count: super::wire::read_u32(buf, WHAT)?,
            max_frame_bytes: super::wire::read_u32(buf, WHAT)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Decodes `"50 53 43 4f …"`-style hex fixtures.
    fn hex(s: &str) -> Vec<u8> {
        s.split_whitespace().map(|b| u8::from_str_radix(b, 16).unwrap()).collect()
    }

    // ---- golden bytes: the format cannot silently drift ---------------

    #[test]
    fn golden_hello_frame() {
        // magic "PSCO", version 1, kind 0, flags 0, id 0, len 0.
        let expect = hex("50 53 43 4f 01 00 00 00 00 00 00 00 00 00 00 00 00 00 00 00");
        assert_eq!(Envelope::hello().to_bytes(), expect);
        assert_eq!(Envelope::from_bytes(&expect, DEFAULT_MAX_FRAME).unwrap(), Envelope::hello());
    }

    #[test]
    fn golden_hello_ack_frame() {
        let info = ServerInfo { node_count: 0x1234, max_frame_bytes: 0x0100_0000 };
        let expect = hex("50 53 43 4f 01 00 01 00 00 00 00 00 00 00 00 00 08 00 00 00 \
             34 12 00 00 00 00 00 01");
        assert_eq!(Envelope::hello_ack(&info).to_bytes(), expect);
        let back = Envelope::from_bytes(&expect, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.decode_server_info().unwrap(), info);
    }

    #[test]
    fn golden_request_frame() {
        // Request id 7: SinglePair { i: 3, j: 4 } (tag 0, two u32 LE).
        let env = Envelope::request(7, &QueryRequest::SinglePair { i: 3, j: 4 });
        let expect = hex("50 53 43 4f 01 00 02 00 07 00 00 00 00 00 00 00 09 00 00 00 \
             00 03 00 00 00 04 00 00 00");
        assert_eq!(env.to_bytes(), expect);
        let back = Envelope::from_bytes(&expect, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(back.request_id, 7);
        assert_eq!(back.decode_request().unwrap(), QueryRequest::SinglePair { i: 3, j: 4 });
    }

    #[test]
    fn golden_response_frame() {
        // Response id 7: Score(0.5) (tag 0, f64 LE bit pattern 0x3FE0…).
        let env = Envelope::response(7, &QueryResponse::Score(0.5));
        let expect = hex("50 53 43 4f 01 00 03 00 07 00 00 00 00 00 00 00 09 00 00 00 \
             00 00 00 00 00 00 00 e0 3f");
        assert_eq!(env.to_bytes(), expect);
    }

    #[test]
    fn golden_error_frame() {
        // Error id 9: NodeOutOfRange { node: 0x10, node_count: 5 }.
        let err = QueryError::NodeOutOfRange { node: 0x10, node_count: 5 };
        let env = Envelope::error(9, &err);
        let expect = hex("50 53 43 4f 01 00 04 00 09 00 00 00 00 00 00 00 09 00 00 00 \
             00 10 00 00 00 05 00 00 00");
        assert_eq!(env.to_bytes(), expect);
        assert_eq!(
            Envelope::from_bytes(&expect, DEFAULT_MAX_FRAME).unwrap().decode_error().unwrap(),
            err
        );
    }

    #[test]
    fn golden_shutdown_and_goodbye_frames() {
        let shutdown = hex("50 53 43 4f 01 00 05 00 00 00 00 00 00 00 00 00 00 00 00 00");
        let goodbye = hex("50 53 43 4f 01 00 06 00 00 00 00 00 00 00 00 00 00 00 00 00");
        assert_eq!(Envelope::shutdown().to_bytes(), shutdown);
        assert_eq!(Envelope::goodbye().to_bytes(), goodbye);
    }

    #[test]
    fn golden_worker_frames() {
        // The worker-control kinds 7–12. Payloads are opaque at the
        // envelope layer (their codecs are pinned by `api::worker`
        // round-trip tests), so these fixtures pin what matters here:
        // the kind-byte assignment of each variant, which is wire
        // surface that may never be renumbered (see WIRE_TAGS.manifest).
        let cases: [(FrameKind, u64, &str); 6] = [
            (
                FrameKind::LoadPartition,
                1,
                "50 53 43 4f 01 00 07 00 01 00 00 00 00 00 00 00 00 00 00 00",
            ),
            (
                FrameKind::BuildShard,
                2,
                "50 53 43 4f 01 00 08 00 02 00 00 00 00 00 00 00 00 00 00 00",
            ),
            (
                FrameKind::ShardQuery,
                3,
                "50 53 43 4f 01 00 09 00 03 00 00 00 00 00 00 00 00 00 00 00",
            ),
            (
                FrameKind::ShardTopK,
                4,
                "50 53 43 4f 01 00 0a 00 04 00 00 00 00 00 00 00 00 00 00 00",
            ),
            (
                FrameKind::WorkerStats,
                5,
                "50 53 43 4f 01 00 0b 00 05 00 00 00 00 00 00 00 00 00 00 00",
            ),
            (
                FrameKind::LoadStore,
                6,
                "50 53 43 4f 01 00 0c 00 06 00 00 00 00 00 00 00 00 00 00 00",
            ),
        ];
        for (kind, id, fixture) in cases {
            let env = Envelope { kind, request_id: id, payload: Vec::new() };
            assert_eq!(env.to_bytes(), hex(fixture), "{kind:?}");
            assert_eq!(Envelope::from_bytes(&hex(fixture), DEFAULT_MAX_FRAME).unwrap(), env);
        }
    }

    // ---- rejection paths ----------------------------------------------

    #[test]
    fn truncation_at_every_cut_is_detected() {
        let bytes = Envelope::request(3, &QueryRequest::Cohort { v: 2 }).to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                Envelope::from_bytes(&bytes[..cut], DEFAULT_MAX_FRAME),
                Err(FrameError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Envelope::hello().to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            Envelope::from_bytes(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic { found: *b"XSCO" })
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = Envelope::hello().to_bytes();
        bytes[4] = 99; // version LE low byte
        assert_eq!(
            Envelope::from_bytes(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn unknown_kind_and_flags_are_rejected() {
        let mut bytes = Envelope::hello().to_bytes();
        bytes[6] = 42;
        assert_eq!(
            Envelope::from_bytes(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::UnknownKind { kind: 42 })
        );
        let mut bytes = Envelope::hello().to_bytes();
        bytes[7] = 0x80;
        assert_eq!(
            Envelope::from_bytes(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::NonZeroFlags { flags: 0x80 })
        );
    }

    #[test]
    fn oversize_payload_length_is_rejected_before_any_allocation() {
        // A header announcing a u32::MAX payload with no payload bytes:
        // must fail on the limit check, never reserve memory.
        let mut bytes = Envelope::hello().to_bytes();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Envelope::from_bytes(&bytes, 1024),
            Err(FrameError::Oversize { len: u32::MAX, max: 1024 })
        );
        // Under the limit but past the end of the buffer: clean truncation.
        let mut bytes = Envelope::hello().to_bytes();
        bytes[16..20].copy_from_slice(&512u32.to_le_bytes());
        assert_eq!(Envelope::from_bytes(&bytes, 1024), Err(FrameError::Truncated));
    }

    #[test]
    fn trailing_bytes_after_a_frame_are_rejected() {
        let mut bytes = Envelope::goodbye().to_bytes();
        bytes.push(0);
        assert_eq!(
            Envelope::from_bytes(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::Payload(WireError::TrailingBytes { remaining: 1 }))
        );
    }

    #[test]
    fn decode_reports_consumed_length_for_streaming() {
        let a = Envelope::request(1, &QueryRequest::SingleSource { i: 5 });
        let b = Envelope::goodbye();
        let mut stream = a.to_bytes();
        stream.extend_from_slice(&b.to_bytes());
        let (first, used) = Envelope::decode(&stream, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(first, a);
        let (second, used2) = Envelope::decode(&stream[used..], DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(second, b);
        assert_eq!(used + used2, stream.len());
    }

    #[test]
    fn undecodable_payload_is_a_payload_error() {
        let env = Envelope { kind: FrameKind::Request, request_id: 1, payload: vec![200] };
        assert!(matches!(env.decode_request(), Err(FrameError::Payload(_))));
    }

    #[test]
    fn server_info_roundtrips() {
        let info = ServerInfo { node_count: u32::MAX, max_frame_bytes: 1 };
        assert_eq!(ServerInfo::from_bytes(&info.to_bytes()).unwrap(), info);
        assert_eq!(info.to_bytes().len(), info.encoded_len());
    }
}
