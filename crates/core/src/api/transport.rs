//! Frame I/O over blocking *and* nonblocking streams — the one
//! read/write-frame path every PASCO network peer (query server, typed
//! client, SimRank worker, the distributed coordinator) shares.
//!
//! Two styles of consumer:
//!
//! * **Blocking peers** (client, worker, coordinator) use
//!   [`read_envelope`] / [`poll_envelope`] / [`write_envelope`]: one call,
//!   one complete frame.
//! * **Readiness-driven peers** (the `pasco_server` epoll reactor) use the
//!   resumable state machines: [`FrameDecoder`] accumulates whatever bytes
//!   a nonblocking read produced and yields envelopes as they complete
//!   (partial reads resume where they left off), and [`WriteQueue`] holds
//!   encoded frames mid-write so a short write resumes at the next
//!   writability event.
//!
//! Both styles validate the envelope header — magic, version, kind,
//! frame-size limit — *before* allocating for or reading the payload, and
//! both fast-reject a first byte that cannot start a frame. This used to
//! live in `pasco_server::transport`; it moved next to the envelope so the
//! worker runtime and the coordinator engine speak frames through the
//! identical code instead of a copy.

use super::envelope::{Envelope, EnvelopeHeader, FrameError, HEADER_LEN, MAGIC};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a frame could not be moved across a stream.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying stream failed (or ended mid-frame).
    Io(io::Error),
    /// The bytes read are not a valid frame (bad magic, unsupported
    /// version, oversize payload, …). Fatal to the connection.
    Frame(FrameError),
    /// The peer closed the stream cleanly between frames.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "stream error: {e}"),
            TransportError::Frame(e) => write!(f, "protocol error: {e}"),
            TransportError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// Reads the first byte of a frame, distinguishing a clean close from an
/// I/O fault; `Ok(None)` means the read timed out before any byte
/// arrived (only possible when a read timeout is set on the stream).
fn read_first_byte(r: &mut impl Read) -> Result<Option<u8>, TransportError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(TransportError::Closed),
            Ok(_) => return Ok(Some(first[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
}

/// Reads the rest of a frame once its first byte is in hand. The header
/// is fully validated (including the `max_frame` payload limit) before a
/// single payload byte is read or allocated.
fn read_after_first(
    first: u8,
    r: &mut impl Read,
    max_frame: u32,
) -> Result<Envelope, TransportError> {
    let mut head = [0u8; HEADER_LEN];
    head[0] = first;
    r.read_exact(&mut head[1..])?;
    let header = EnvelopeHeader::decode(&head, max_frame)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    Ok(Envelope { kind: header.kind, request_id: header.request_id, payload })
}

/// Blocking frame read: waits for one complete envelope.
pub fn read_envelope(r: &mut impl Read, max_frame: u32) -> Result<Envelope, TransportError> {
    match read_first_byte(r)? {
        // No timeout is set on this stream, so a None cannot happen; if a
        // caller set one anyway, surface it as a timeout error.
        None => Err(TransportError::Io(io::ErrorKind::TimedOut.into())),
        Some(first) => read_after_first(first, r, max_frame),
    }
}

/// Polling frame read for server connections: waits up to `poll` for a
/// frame to *start*, returning `Ok(None)` on a quiet interval so the
/// caller can check its stop flag.
///
/// Two defences against peers that are not real clients: a first byte
/// that is not the first magic byte is rejected immediately (no waiting
/// for a full header that will never come), and once a frame has
/// started, each subsequent read must make progress within
/// `frame_timeout` — a peer that stalls mid-frame is dropped instead of
/// pinning a connection thread forever.
pub fn poll_envelope(
    reader: &mut BufReader<TcpStream>,
    max_frame: u32,
    poll: Duration,
    frame_timeout: Duration,
) -> Result<Option<Envelope>, TransportError> {
    reader.get_ref().set_read_timeout(Some(poll))?;
    let first = match read_first_byte(reader)? {
        None => return Ok(None),
        Some(b) => b,
    };
    if first != MAGIC[0] {
        return Err(TransportError::Frame(FrameError::NotAFrame { first }));
    }
    reader.get_ref().set_read_timeout(Some(frame_timeout))?;
    read_after_first(first, reader, max_frame).map(Some)
}

/// Writes one frame and flushes it onto the wire.
pub fn write_envelope(w: &mut impl Write, env: &Envelope) -> io::Result<()> {
    w.write_all(&env.to_bytes())?;
    w.flush()
}

/// A resumable, allocation-bounded frame decoder for nonblocking streams.
///
/// Feed it whatever bytes a readiness-driven read produced —
/// [`FrameDecoder::feed`] consumes up to one frame per call and reports
/// how many bytes it took, so a buffer holding several pipelined frames
/// (or half of one) is handled by calling `feed` in a loop. State
/// persists across calls: a frame split over any number of reads
/// reassembles exactly, and [`FrameDecoder::mid_frame`] tells the caller
/// whether an I/O deadline should be armed (a peer stalling mid-frame is
/// a slowloris; a peer idle *between* frames is just idle).
///
/// Every envelope guarantee holds before payload bytes are buffered: the
/// first byte must be the first magic byte (fast reject), and the full
/// header — magic, version, kind, flags, payload length against
/// `max_frame` — is validated before one payload byte is allocated.
#[derive(Debug)]
pub struct FrameDecoder {
    max_frame: u32,
    head: [u8; HEADER_LEN],
    have: usize,
    header: Option<EnvelopeHeader>,
    payload: Vec<u8>,
}

impl FrameDecoder {
    /// A fresh decoder enforcing `max_frame` on every announced payload.
    pub fn new(max_frame: u32) -> Self {
        FrameDecoder {
            max_frame,
            head: [0u8; HEADER_LEN],
            have: 0,
            header: None,
            payload: Vec::new(),
        }
    }

    /// Consumes bytes from the front of `bytes` — at most one frame's
    /// worth — and returns `(consumed, Some(envelope))` when that
    /// completes a frame, `(consumed, None)` when more bytes are needed.
    /// Call in a loop until `consumed == 0` with `None` to drain a buffer
    /// of pipelined frames. A framing violation is fatal to the stream:
    /// the decoder must be discarded with its connection.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(usize, Option<Envelope>), FrameError> {
        let mut used = 0;
        // Header phase: accumulate HEADER_LEN bytes, validating the very
        // first one immediately so a non-protocol peer is rejected before
        // it can dribble 19 more bytes of garbage.
        if self.header.is_none() {
            if self.have == 0 && !bytes.is_empty() && bytes[0] != MAGIC[0] {
                return Err(FrameError::NotAFrame { first: bytes[0] });
            }
            let want = HEADER_LEN - self.have;
            let take = want.min(bytes.len());
            self.head[self.have..self.have + take].copy_from_slice(&bytes[..take]);
            self.have += take;
            used += take;
            if self.have < HEADER_LEN {
                return Ok((used, None));
            }
            let header = EnvelopeHeader::decode(&self.head, self.max_frame)?;
            self.payload = Vec::with_capacity(header.payload_len as usize);
            self.header = Some(header);
        }
        // Payload phase: the header is validated, so payload_len is under
        // the frame limit and this extend is allocation-bounded.
        let header = self.header.expect("header set above");
        let want = header.payload_len as usize - self.payload.len();
        let take = want.min(bytes.len() - used);
        self.payload.extend_from_slice(&bytes[used..used + take]);
        used += take;
        if self.payload.len() < header.payload_len as usize {
            return Ok((used, None));
        }
        let env = Envelope {
            kind: header.kind,
            request_id: header.request_id,
            payload: std::mem::take(&mut self.payload),
        };
        self.header = None;
        self.have = 0;
        Ok((used, Some(env)))
    }

    /// Whether a frame has started but not finished — the state in which
    /// a stalled peer deserves an I/O deadline rather than patience.
    pub fn mid_frame(&self) -> bool {
        self.have > 0 || self.header.is_some()
    }
}

/// A resumable outbound frame queue for nonblocking streams.
///
/// Frames are encoded once on [`WriteQueue::push`] and drained by
/// [`WriteQueue::write_to`], which writes as much as the sink accepts and
/// parks the rest — a short or would-block write resumes at the exact
/// byte on the next writability event. Frames leave in push order, so a
/// server that pushes responses as they complete gets completion-order
/// delivery for free.
#[derive(Debug, Default)]
pub struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    /// Bytes of the front buffer already written.
    front_pos: usize,
    pending: usize,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `env` and queues it behind everything already pending.
    pub fn push(&mut self, env: &Envelope) {
        let bytes = env.to_bytes();
        self.pending += bytes.len();
        self.bufs.push_back(bytes);
    }

    /// Whether everything pushed has been fully written.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Bytes queued but not yet accepted by the sink.
    pub fn pending_bytes(&self) -> usize {
        self.pending
    }

    /// Writes until drained or the sink stops accepting. Returns
    /// `Ok(true)` when the queue emptied, `Ok(false)` on would-block
    /// (progress is saved), and an error only on a real sink fault — a
    /// sink returning `Ok(0)` counts as one ([`io::ErrorKind::WriteZero`]).
    pub fn write_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while let Some(front) = self.bufs.front() {
            match w.write(&front[self.front_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.front_pos += n;
                    self.pending -= n;
                    if self.front_pos == front.len() {
                        self.bufs.pop_front();
                        self.front_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::envelope::{ServerInfo, DEFAULT_MAX_FRAME};
    use crate::api::{QueryRequest, QueryResponse};

    fn frames() -> Vec<Envelope> {
        vec![
            Envelope::hello(),
            Envelope::hello_ack(&ServerInfo { node_count: 77, max_frame_bytes: 4096 }),
            Envelope::request(3, &QueryRequest::SinglePair { i: 1, j: 2 }),
            Envelope::response(3, &QueryResponse::Score(0.25)),
            Envelope::goodbye(),
        ]
    }

    /// The decoder must reassemble a pipelined stream fed in chunks of
    /// any size — including one byte at a time — bit-identically.
    #[test]
    fn decoder_resumes_across_arbitrary_split_points() {
        let stream: Vec<u8> = frames().iter().flat_map(Envelope::to_bytes).collect();
        for chunk in [1usize, 2, 3, 7, 19, 64, stream.len()] {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                let mut off = 0;
                while off < piece.len() {
                    let (used, env) = dec.feed(&piece[off..]).unwrap();
                    off += used;
                    let done = env.is_none();
                    if let Some(env) = env {
                        got.push(env);
                    }
                    if used == 0 && done {
                        break;
                    }
                }
            }
            assert_eq!(got, frames(), "chunk size {chunk}");
            assert!(!dec.mid_frame(), "stream ended on a frame boundary");
        }
    }

    #[test]
    fn decoder_tracks_mid_frame_for_deadline_arming() {
        let bytes = Envelope::request(9, &QueryRequest::Cohort { v: 4 }).to_bytes();
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        assert!(!dec.mid_frame());
        let (used, env) = dec.feed(&bytes[..1]).unwrap();
        assert_eq!((used, env), (1, None));
        assert!(dec.mid_frame(), "one byte in: a frame has started");
        let (_, env) = dec.feed(&bytes[1..]).unwrap();
        assert!(env.is_some());
        assert!(!dec.mid_frame(), "frame complete: idle again");
    }

    #[test]
    fn decoder_fast_rejects_a_non_protocol_first_byte() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        assert_eq!(dec.feed(b"GET / HTTP/1.1").unwrap_err(), FrameError::NotAFrame { first: b'G' });
    }

    #[test]
    fn decoder_rejects_oversize_before_buffering_payload() {
        let mut bytes = Envelope::request(1, &QueryRequest::Cohort { v: 1 }).to_bytes();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new(1024);
        // Feed only the header: the limit check fires without a single
        // payload byte in hand.
        assert_eq!(
            dec.feed(&bytes[..HEADER_LEN]).unwrap_err(),
            FrameError::Oversize { len: u32::MAX, max: 1024 }
        );
    }

    #[test]
    fn decoder_rejects_bad_version_and_kind_at_the_header() {
        let mut bytes = Envelope::hello().to_bytes();
        bytes[4] = 9;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        assert_eq!(dec.feed(&bytes).unwrap_err(), FrameError::UnsupportedVersion { found: 9 });
        let mut bytes = Envelope::hello().to_bytes();
        bytes[6] = 99;
        let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
        assert_eq!(dec.feed(&bytes).unwrap_err(), FrameError::UnknownKind { kind: 99 });
    }

    /// A sink that accepts at most `cap` bytes per call and interleaves
    /// would-blocks, mimicking a congested nonblocking socket.
    struct Choppy {
        out: Vec<u8>,
        cap: usize,
        block_next: bool,
    }

    impl Write for Choppy {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if std::mem::replace(&mut self.block_next, true) {
                self.block_next = false;
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_resumes_partial_writes_in_push_order() {
        let mut q = WriteQueue::new();
        for env in frames() {
            q.push(&env);
        }
        let expect: Vec<u8> = frames().iter().flat_map(Envelope::to_bytes).collect();
        assert_eq!(q.pending_bytes(), expect.len());
        let mut sink = Choppy { out: Vec::new(), cap: 5, block_next: false };
        let mut rounds = 0;
        while !q.write_to(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 10_000, "must make progress");
        }
        assert_eq!(sink.out, expect);
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
        // Drained queue stays reusable.
        q.push(&Envelope::goodbye());
        let mut sink = Choppy { out: Vec::new(), cap: 1024, block_next: false };
        while !q.write_to(&mut sink).unwrap() {}
        assert_eq!(sink.out, Envelope::goodbye().to_bytes());
    }

    #[test]
    fn write_queue_surfaces_write_zero_as_an_error() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut q = WriteQueue::new();
        q.push(&Envelope::hello());
        assert_eq!(q.write_to(&mut Dead).unwrap_err().kind(), io::ErrorKind::WriteZero);
    }
}
