//! Frame I/O over blocking streams — the one read/write-frame path every
//! PASCO network peer (query server, typed client, SimRank worker, the
//! distributed coordinator) shares.
//!
//! Reads validate the envelope header — magic, version, kind, frame-size
//! limit — *before* allocating for or reading the payload, and
//! [`poll_envelope`] gives servers a polling read that notices a drain
//! request while a connection is idle. This used to live in
//! `pasco_server::transport`; it moved next to the envelope so the worker
//! runtime and the coordinator engine speak frames through the identical
//! code instead of a copy.

use super::envelope::{Envelope, EnvelopeHeader, FrameError, HEADER_LEN, MAGIC};
use std::fmt;
use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Why a frame could not be moved across a stream.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying stream failed (or ended mid-frame).
    Io(io::Error),
    /// The bytes read are not a valid frame (bad magic, unsupported
    /// version, oversize payload, …). Fatal to the connection.
    Frame(FrameError),
    /// The peer closed the stream cleanly between frames.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "stream error: {e}"),
            TransportError::Frame(e) => write!(f, "protocol error: {e}"),
            TransportError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Frame(e)
    }
}

/// Reads the first byte of a frame, distinguishing a clean close from an
/// I/O fault; `Ok(None)` means the read timed out before any byte
/// arrived (only possible when a read timeout is set on the stream).
fn read_first_byte(r: &mut impl Read) -> Result<Option<u8>, TransportError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(TransportError::Closed),
            Ok(_) => return Ok(Some(first[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
}

/// Reads the rest of a frame once its first byte is in hand. The header
/// is fully validated (including the `max_frame` payload limit) before a
/// single payload byte is read or allocated.
fn read_after_first(
    first: u8,
    r: &mut impl Read,
    max_frame: u32,
) -> Result<Envelope, TransportError> {
    let mut head = [0u8; HEADER_LEN];
    head[0] = first;
    r.read_exact(&mut head[1..])?;
    let header = EnvelopeHeader::decode(&head, max_frame)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    Ok(Envelope { kind: header.kind, request_id: header.request_id, payload })
}

/// Blocking frame read: waits for one complete envelope.
pub fn read_envelope(r: &mut impl Read, max_frame: u32) -> Result<Envelope, TransportError> {
    match read_first_byte(r)? {
        // No timeout is set on this stream, so a None cannot happen; if a
        // caller set one anyway, surface it as a timeout error.
        None => Err(TransportError::Io(io::ErrorKind::TimedOut.into())),
        Some(first) => read_after_first(first, r, max_frame),
    }
}

/// Polling frame read for server connections: waits up to `poll` for a
/// frame to *start*, returning `Ok(None)` on a quiet interval so the
/// caller can check its stop flag.
///
/// Two defences against peers that are not real clients: a first byte
/// that is not the first magic byte is rejected immediately (no waiting
/// for a full header that will never come), and once a frame has
/// started, each subsequent read must make progress within
/// `frame_timeout` — a peer that stalls mid-frame is dropped instead of
/// pinning a connection thread forever.
pub fn poll_envelope(
    reader: &mut BufReader<TcpStream>,
    max_frame: u32,
    poll: Duration,
    frame_timeout: Duration,
) -> Result<Option<Envelope>, TransportError> {
    reader.get_ref().set_read_timeout(Some(poll))?;
    let first = match read_first_byte(reader)? {
        None => return Ok(None),
        Some(b) => b,
    };
    if first != MAGIC[0] {
        return Err(TransportError::Frame(FrameError::NotAFrame { first }));
    }
    reader.get_ref().set_read_timeout(Some(frame_timeout))?;
    read_after_first(first, reader, max_frame).map(Some)
}

/// Writes one frame and flushes it onto the wire.
pub fn write_envelope(w: &mut impl Write, env: &Envelope) -> io::Result<()> {
    w.write_all(&env.to_bytes())?;
    w.flush()
}
