//! The typed query API: serializable requests and responses, typed
//! errors, and the object-safe [`QueryService`] front door.
//!
//! CloudWalker serves several query shapes (single-pair, single-source,
//! top-`k`, pairwise matrices, raw cohorts) from one shared index. This
//! module gives every shape a first-class value representation:
//!
//! * [`QueryRequest`] / [`QueryResponse`] — one enum variant per query
//!   kind, plus a one-level [`QueryRequest::Batch`] wrapper;
//! * [`QueryError`] — typed failures ([`QueryError::NodeOutOfRange`],
//!   [`QueryError::InvalidK`], …) replacing the panics and hand-rolled
//!   bounds checks that used to guard the infallible methods;
//! * [`QueryService`] — `fn execute(&self, QueryRequest) ->
//!   Result<QueryResponse, QueryError>`, implemented by the caching
//!   [`QuerySession`] serving layer and (as a thin adapter) by
//!   [`CloudWalker`] itself;
//! * [`wire`] — a compact binary codec with exact round-trip guarantees,
//!   so a network front-end and a real-cluster RPC engine share one wire
//!   format;
//! * [`envelope`] — the versioned frame wrapper around [`wire`] messages
//!   (magic + protocol version, request ids for pipelining, first-class
//!   error frames, frame-size limits) that the `pasco_server` TCP front
//!   end speaks.
//!
//! ```
//! use pasco_simrank::api::{QueryRequest, QueryResponse, QueryService};
//! use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
//! use pasco_graph::generators;
//!
//! let g = generators::barabasi_albert(200, 3, 1);
//! let cw = CloudWalker::build(g.into(), SimRankConfig::fast(), ExecMode::Local).unwrap();
//! let svc: &dyn QueryService = &cw;
//! match svc.execute(QueryRequest::SinglePair { i: 3, j: 4 }).unwrap() {
//!     QueryResponse::Score(s) => assert!((0.0..=1.0).contains(&s)),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! // Out-of-range nodes are typed errors, not panics.
//! assert!(svc.execute(QueryRequest::SinglePair { i: 0, j: 999 }).is_err());
//! ```

pub mod envelope;
pub mod transport;
pub mod wire;
pub mod worker;

use crate::cloudwalker::CloudWalker;
use crate::session::QuerySession;
use pasco_graph::NodeId;
use pasco_mc::walks::StepDistributions;
use std::fmt;

/// One typed query against a SimRank index.
///
/// Every serving entry point — [`CloudWalker`]'s checked methods, the
/// caching [`QuerySession`], the `pasco` CLI, and (via [`wire`]) any
/// network front-end — speaks this enum.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// MCSP: the similarity of one node pair.
    SinglePair {
        /// First node of the pair.
        i: NodeId,
        /// Second node of the pair.
        j: NodeId,
    },
    /// MCSS: the similarity of every node to `i` (dense row).
    SingleSource {
        /// The query node.
        i: NodeId,
    },
    /// The deterministic-push MCSS variant (ablation A1): exact sparse
    /// pushes instead of forward walks, dense row out.
    SingleSourcePush {
        /// The query node.
        i: NodeId,
    },
    /// Sparse top-`k` MCSS: only the `k` most similar nodes, ranked.
    SingleSourceTopK {
        /// The query node.
        i: NodeId,
        /// How many neighbours to return; must be positive.
        k: u64,
    },
    /// Pairwise similarity matrix over `rows × cols`.
    PairsMatrix {
        /// Row nodes of the matrix.
        rows: Vec<NodeId>,
        /// Column nodes of the matrix.
        cols: Vec<NodeId>,
    },
    /// The raw `R'`-walker query cohort of `v` (the building block both
    /// MCSP and MCSS start from; what [`QuerySession`] caches).
    Cohort {
        /// The cohort's source node.
        v: NodeId,
    },
    /// Several queries answered in one round trip. One level only:
    /// nesting a batch inside a batch is [`QueryError::NestedBatch`].
    Batch(Vec<QueryRequest>),
}

/// The answer to a [`QueryRequest`], variant-matched to the request kind.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    /// A single similarity score (from [`QueryRequest::SinglePair`]).
    Score(f64),
    /// A dense score row (from [`QueryRequest::SingleSource`] /
    /// [`QueryRequest::SingleSourcePush`]).
    Scores(Vec<f64>),
    /// A ranked `(node, score)` list (from
    /// [`QueryRequest::SingleSourceTopK`]).
    Ranked(Vec<(NodeId, f64)>),
    /// A `rows × cols` score matrix (from [`QueryRequest::PairsMatrix`]).
    Matrix(Vec<Vec<f64>>),
    /// Per-step walker distributions (from [`QueryRequest::Cohort`]).
    Cohort(StepDistributions),
    /// One response per request of a [`QueryRequest::Batch`], in order.
    Batch(Vec<QueryResponse>),
}

/// Typed failure of a query. The index itself never fails at query
/// time: every variant is either a caller error (bad node, bad `k`,
/// malformed batch) or a serving limit ([`QueryError::
/// ResponseTooLarge`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A requested node is not a node of the indexed graph.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// How many nodes the indexed graph has.
        node_count: u32,
    },
    /// A top-`k` request with an unusable `k` (zero).
    InvalidK {
        /// The offending `k`.
        k: u64,
    },
    /// A [`QueryRequest::Batch`] with no requests in it.
    EmptyBatch,
    /// A [`QueryRequest::PairsMatrix`] with no rows or no columns.
    EmptyNodeSet,
    /// A [`QueryRequest::Batch`] nested inside another batch.
    NestedBatch,
    /// The answer was computed but its encoding exceeds the serving
    /// frame-size limit, so it cannot be shipped to this caller. Ask for
    /// less (top-`k` instead of a dense row, a smaller batch) or raise
    /// the server's limit.
    ResponseTooLarge {
        /// The encoded response size that was refused.
        bytes: u64,
        /// The frame-size limit in force.
        max_frame: u32,
    },
    /// A distributed-substrate query could not be answered because the
    /// worker owning the routed partition is gone or broke protocol.
    /// The index and the surviving workers are unaffected; retry once
    /// the worker set is restored.
    WorkerUnavailable {
        /// What failed, e.g. `"worker 1 (127.0.0.1:40551): connection
        /// closed"`.
        detail: String,
    },
    /// The query kind is not supported on this execution substrate —
    /// e.g. forward-push MCSS needs the resident CSR graph and cannot
    /// run over a mapped store. Ask a different substrate (or a
    /// supported kind); nothing is wrong with the index.
    Unsupported {
        /// What was asked and why this substrate cannot serve it.
        detail: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            QueryError::InvalidK { k } => write!(f, "invalid k = {k} (must be positive)"),
            QueryError::EmptyBatch => write!(f, "batch request contains no queries"),
            QueryError::EmptyNodeSet => write!(f, "pairs matrix needs at least one row and column"),
            QueryError::NestedBatch => write!(f, "batch requests cannot be nested"),
            QueryError::ResponseTooLarge { bytes, max_frame } => {
                write!(f, "response of {bytes} bytes exceeds the {max_frame}-byte frame limit")
            }
            QueryError::WorkerUnavailable { detail } => {
                write!(f, "distributed worker unavailable: {detail}")
            }
            QueryError::Unsupported { detail } => {
                write!(f, "unsupported on this substrate: {detail}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The one bounds check every layer (request validation, engine, session)
/// shares, so "in range" means the same thing everywhere.
#[inline]
pub(crate) fn check_node(v: NodeId, node_count: u32) -> Result<(), QueryError> {
    if v < node_count {
        Ok(())
    } else {
        Err(QueryError::NodeOutOfRange { node: v, node_count })
    }
}

/// Converts a wire-width `k` to an in-process count without truncation:
/// a `k` beyond `usize::MAX` (possible on 32-bit targets) clamps to
/// "effectively all", never silently wraps to a small number.
#[inline]
fn k_to_usize(k: u64) -> usize {
    usize::try_from(k).unwrap_or(usize::MAX)
}

impl QueryRequest {
    /// Checks this request against a graph of `node_count` nodes without
    /// executing it: every referenced node must be in range, top-`k`
    /// requests need a positive `k`, batches must be non-empty, flat and
    /// element-wise valid. [`QueryService`] implementations validate
    /// through here so the CLI, the session, and the engine adapter agree
    /// on what is acceptable.
    pub fn validate(&self, node_count: u32) -> Result<(), QueryError> {
        let check = |v: NodeId| check_node(v, node_count);
        match self {
            QueryRequest::SinglePair { i, j } => {
                check(*i)?;
                check(*j)
            }
            QueryRequest::SingleSource { i } | QueryRequest::SingleSourcePush { i } => check(*i),
            QueryRequest::SingleSourceTopK { i, k } => {
                check(*i)?;
                if *k == 0 {
                    return Err(QueryError::InvalidK { k: *k });
                }
                Ok(())
            }
            QueryRequest::PairsMatrix { rows, cols } => {
                if rows.is_empty() || cols.is_empty() {
                    return Err(QueryError::EmptyNodeSet);
                }
                rows.iter().chain(cols).try_for_each(|&v| check(v))
            }
            QueryRequest::Cohort { v } => check(*v),
            QueryRequest::Batch(reqs) => {
                if reqs.is_empty() {
                    return Err(QueryError::EmptyBatch);
                }
                reqs.iter().try_for_each(|r| match r {
                    QueryRequest::Batch(_) => Err(QueryError::NestedBatch),
                    other => other.validate(node_count),
                })
            }
        }
    }
}

/// The object-safe front door every query flows through.
///
/// Implemented by [`QuerySession`] (caching, batch-parallel serving) and
/// by [`CloudWalker`] (a thin adapter straight onto the engine). Holding
/// a `Box<dyn QueryService>` or `&dyn QueryService`, a caller — the CLI,
/// a test harness, a future HTTP/gRPC front-end — serves every query
/// kind without knowing which layer answers it.
///
/// Implementations validate with [`QueryRequest::validate`] before any
/// work: a malformed request returns its typed [`QueryError`] and never
/// panics. Batches fail as a whole on the first invalid member request.
pub trait QueryService: Send + Sync {
    /// Executes one request, returning the variant-matched response.
    fn execute(&self, req: QueryRequest) -> Result<QueryResponse, QueryError>;

    /// How many nodes the served graph has — the bound every node id in
    /// a request must respect. A network front door advertises this in
    /// its handshake ([`envelope::ServerInfo`]) so clients can
    /// pre-validate requests without a round trip.
    fn node_count(&self) -> u32;
}

/// Shared batch tail of both service implementations: `req` is already
/// validated (non-empty, flat), so just execute the members in order.
fn execute_batch<S: QueryService + ?Sized>(
    svc: &S,
    reqs: Vec<QueryRequest>,
) -> Result<QueryResponse, QueryError> {
    reqs.into_iter()
        .map(|r| svc.execute(r))
        .collect::<Result<Vec<_>, _>>()
        .map(QueryResponse::Batch)
}

impl QueryService for CloudWalker {
    /// Serves straight from the engine: no caching, every cohort is
    /// simulated fresh. Numerically identical to the direct checked
    /// methods ([`CloudWalker::try_single_pair`] and friends).
    fn execute(&self, req: QueryRequest) -> Result<QueryResponse, QueryError> {
        req.validate(CloudWalker::node_count(self))?;
        Ok(match req {
            QueryRequest::SinglePair { i, j } => QueryResponse::Score(self.try_single_pair(i, j)?),
            QueryRequest::SingleSource { i } => QueryResponse::Scores(self.try_single_source(i)?),
            QueryRequest::SingleSourcePush { i } => {
                QueryResponse::Scores(self.try_single_source_push(i)?)
            }
            QueryRequest::SingleSourceTopK { i, k } => {
                QueryResponse::Ranked(self.try_single_source_topk(i, k_to_usize(k))?)
            }
            QueryRequest::PairsMatrix { rows, cols } => {
                let m = rows
                    .iter()
                    .map(|&i| {
                        cols.iter().map(|&j| self.try_single_pair(i, j)).collect::<Result<_, _>>()
                    })
                    .collect::<Result<_, _>>()?;
                QueryResponse::Matrix(m)
            }
            QueryRequest::Cohort { v } => QueryResponse::Cohort(self.try_query_cohort(v)?),
            QueryRequest::Batch(reqs) => return execute_batch(self, reqs),
        })
    }

    fn node_count(&self) -> u32 {
        CloudWalker::node_count(self)
    }
}

impl QueryService for QuerySession {
    /// Serves through the session: single-pair, matrix and cohort
    /// requests go through the cohort cache, single-source requests fan
    /// out to the shared engine. Answers are bitwise identical to the
    /// [`CloudWalker`] adapter's (caching only removes re-simulation).
    fn execute(&self, req: QueryRequest) -> Result<QueryResponse, QueryError> {
        req.validate(self.walker().node_count())?;
        Ok(match req {
            QueryRequest::SinglePair { i, j } => QueryResponse::Score(self.try_single_pair(i, j)?),
            QueryRequest::SingleSource { i } => {
                QueryResponse::Scores(self.walker().try_single_source(i)?)
            }
            QueryRequest::SingleSourcePush { i } => {
                QueryResponse::Scores(self.walker().try_single_source_push(i)?)
            }
            QueryRequest::SingleSourceTopK { i, k } => {
                QueryResponse::Ranked(self.walker().try_single_source_topk(i, k_to_usize(k))?)
            }
            QueryRequest::PairsMatrix { rows, cols } => {
                QueryResponse::Matrix(self.try_pairs_matrix(&rows, &cols)?)
            }
            QueryRequest::Cohort { v } => {
                QueryResponse::Cohort(self.try_cohort(v)?.as_ref().clone())
            }
            QueryRequest::Batch(reqs) => return execute_batch(self, reqs),
        })
    }

    fn node_count(&self) -> u32 {
        self.walker().node_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;
    use crate::SimRankConfig;
    use pasco_graph::generators;
    use std::sync::Arc;

    fn walker() -> Arc<CloudWalker> {
        let g = Arc::new(generators::barabasi_albert(90, 3, 7));
        Arc::new(CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap())
    }

    #[test]
    fn validate_catches_every_malformed_shape() {
        let oob = |node| Err(QueryError::NodeOutOfRange { node, node_count: 10 });
        assert_eq!(QueryRequest::SinglePair { i: 3, j: 10 }.validate(10), oob(10));
        assert_eq!(QueryRequest::SingleSource { i: 11 }.validate(10), oob(11));
        assert_eq!(QueryRequest::SingleSourcePush { i: 99 }.validate(10), oob(99));
        assert_eq!(QueryRequest::SingleSourceTopK { i: 10, k: 5 }.validate(10), oob(10));
        assert_eq!(
            QueryRequest::SingleSourceTopK { i: 1, k: 0 }.validate(10),
            Err(QueryError::InvalidK { k: 0 })
        );
        assert_eq!(
            QueryRequest::PairsMatrix { rows: vec![1], cols: vec![] }.validate(10),
            Err(QueryError::EmptyNodeSet)
        );
        assert_eq!(
            QueryRequest::PairsMatrix { rows: vec![1, 12], cols: vec![2] }.validate(10),
            oob(12)
        );
        assert_eq!(QueryRequest::Cohort { v: 10 }.validate(10), oob(10));
        assert_eq!(QueryRequest::Batch(vec![]).validate(10), Err(QueryError::EmptyBatch));
        assert_eq!(
            QueryRequest::Batch(vec![QueryRequest::Batch(vec![QueryRequest::SingleSource {
                i: 1
            }])])
            .validate(10),
            Err(QueryError::NestedBatch)
        );
        assert_eq!(
            QueryRequest::Batch(vec![
                QueryRequest::SinglePair { i: 1, j: 2 },
                QueryRequest::Cohort { v: 3 },
            ])
            .validate(10),
            Ok(())
        );
    }

    #[test]
    fn engine_adapter_answers_match_direct_methods() {
        let cw = walker();
        let svc: &dyn QueryService = cw.as_ref();
        match svc.execute(QueryRequest::SinglePair { i: 3, j: 40 }).unwrap() {
            QueryResponse::Score(s) => assert_eq!(s, cw.single_pair(3, 40)),
            other => panic!("wrong variant {other:?}"),
        }
        match svc.execute(QueryRequest::SingleSourceTopK { i: 3, k: 5 }).unwrap() {
            QueryResponse::Ranked(r) => assert_eq!(r, cw.single_source_topk(3, 5)),
            other => panic!("wrong variant {other:?}"),
        }
        match svc.execute(QueryRequest::Cohort { v: 3 }).unwrap() {
            QueryResponse::Cohort(c) => assert_eq!(c, cw.query_cohort(3)),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn out_of_range_is_an_error_not_a_panic() {
        let cw = walker();
        let svc: &dyn QueryService = cw.as_ref();
        let err = svc.execute(QueryRequest::SinglePair { i: 0, j: 1_000 }).unwrap_err();
        assert_eq!(err, QueryError::NodeOutOfRange { node: 1_000, node_count: 90 });
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn batch_collects_in_order_and_fails_as_a_whole() {
        let cw = walker();
        let svc: &dyn QueryService = cw.as_ref();
        let resp = svc
            .execute(QueryRequest::Batch(vec![
                QueryRequest::SinglePair { i: 1, j: 2 },
                QueryRequest::SingleSourceTopK { i: 1, k: 3 },
            ]))
            .unwrap();
        match resp {
            QueryResponse::Batch(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], QueryResponse::Score(_)));
                assert!(matches!(items[1], QueryResponse::Ranked(_)));
            }
            other => panic!("wrong variant {other:?}"),
        }
        let err = svc
            .execute(QueryRequest::Batch(vec![
                QueryRequest::SinglePair { i: 1, j: 2 },
                QueryRequest::SingleSource { i: 5_000 },
            ]))
            .unwrap_err();
        assert!(matches!(err, QueryError::NodeOutOfRange { node: 5_000, .. }));
    }

    #[test]
    fn query_service_is_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn QueryService>();
        let cw = walker();
        let boxed: Box<dyn QueryService> = Box::new(QuerySession::new(cw, 16));
        assert!(boxed.execute(QueryRequest::SinglePair { i: 0, j: 1 }).is_ok());
    }
}
