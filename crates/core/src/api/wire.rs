//! Compact binary codec for [`QueryRequest`] / [`QueryResponse`] /
//! [`QueryError`] — the one wire format a network front-end and a
//! real-cluster RPC engine share.
//!
//! Same style as `pasco_cluster::codec` (fixed-width little-endian
//! fields over the `bytes` shim), with one difference: that codec is
//! internal to a process, so its decoder panics on malformed input;
//! this one faces the network, so [`WireCodec::decode`] is fallible and
//! returns a typed [`WireError`] on truncated buffers, unknown tags, or
//! (via [`WireCodec::from_bytes`]) trailing garbage — it never panics
//! and never over-allocates on corrupt length prefixes.
//!
//! Encoding: one tag byte per enum variant, `u32` little-endian node
//! ids and collection lengths, `u64` counts/`k`, `f64` scores by IEEE
//! bit pattern. Round trips are exact: `decode(encode(x)) == x`
//! bit-for-bit, which `tests/api.rs` asserts by proptest for every
//! variant.
//!
//! ```
//! use pasco_simrank::api::wire::WireCodec;
//! use pasco_simrank::api::QueryRequest;
//!
//! let req = QueryRequest::SingleSourceTopK { i: 7, k: 10 };
//! let bytes = req.to_bytes();
//! assert_eq!(QueryRequest::from_bytes(&bytes).unwrap(), req);
//! ```

use super::{QueryError, QueryRequest, QueryResponse};
use bytes::{Buf, BufMut};
use pasco_mc::walks::StepDistributions;
use std::fmt;

/// A malformed wire buffer (the codec never panics on input bytes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a complete value was read.
    Truncated {
        /// What was being decoded when the bytes ran out.
        decoding: &'static str,
    },
    /// An enum tag byte matching no known variant.
    UnknownTag {
        /// The enum being decoded.
        decoding: &'static str,
        /// The unrecognised tag value.
        tag: u8,
    },
    /// [`WireCodec::from_bytes`] decoded a full value but bytes remain.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
    /// Batches nested beyond [`MAX_BATCH_DEPTH`] — the service layer
    /// only accepts one level anyway ([`QueryError::NestedBatch`]), so a
    /// deeper wire value is corruption, and an unbounded recursive decode
    /// would let a hostile buffer overflow the stack.
    TooDeep,
    /// The bytes decoded to a value that violates the type's semantic
    /// invariants (e.g. a shipped graph partition whose offset arrays do
    /// not describe its adjacency arrays). Structurally readable,
    /// logically corrupt.
    Invalid {
        /// What was being decoded.
        decoding: &'static str,
        /// Which invariant failed.
        reason: &'static str,
    },
}

/// How many levels of batch nesting the decoder accepts. The service
/// layer allows one; the codec is slightly lenient so a round trip of a
/// (service-rejected but constructible) nested batch still succeeds.
pub const MAX_BATCH_DEPTH: usize = 8;

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { decoding } => write!(f, "truncated buffer decoding {decoding}"),
            WireError::UnknownTag { decoding, tag } => {
                write!(f, "unknown tag {tag} decoding {decoding}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
            WireError::TooDeep => {
                write!(f, "batches nested deeper than {MAX_BATCH_DEPTH} levels")
            }
            WireError::Invalid { decoding, reason } => {
                write!(f, "invalid {decoding}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Binary encoding with exact, fallible round trips.
pub trait WireCodec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Decodes one value, advancing `buf` past it.
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError>;

    /// Exact encoded size in bytes (`to_bytes().len()`).
    fn encoded_len(&self) -> usize;

    /// Encodes into a fresh, exactly-sized buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        debug_assert_eq!(buf.len(), self.encoded_len());
        buf
    }

    /// Decodes a buffer that must hold exactly one value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut slice = bytes;
        let value = Self::decode(&mut slice)?;
        if slice.is_empty() {
            Ok(value)
        } else {
            Err(WireError::TrailingBytes { remaining: slice.len() })
        }
    }
}

// ---- checked primitive reads ------------------------------------------

fn need(buf: &impl Buf, n: usize, decoding: &'static str) -> Result<(), WireError> {
    if buf.remaining() >= n {
        Ok(())
    } else {
        Err(WireError::Truncated { decoding })
    }
}

pub(super) fn read_u8(buf: &mut impl Buf, decoding: &'static str) -> Result<u8, WireError> {
    need(buf, 1, decoding)?;
    Ok(buf.get_u8())
}

pub(super) fn read_u32(buf: &mut impl Buf, decoding: &'static str) -> Result<u32, WireError> {
    need(buf, 4, decoding)?;
    Ok(buf.get_u32_le())
}

pub(super) fn read_u64(buf: &mut impl Buf, decoding: &'static str) -> Result<u64, WireError> {
    need(buf, 8, decoding)?;
    Ok(buf.get_u64_le())
}

pub(super) fn read_f64(buf: &mut impl Buf, decoding: &'static str) -> Result<f64, WireError> {
    need(buf, 8, decoding)?;
    Ok(buf.get_f64_le())
}

/// Reads a `u32` length prefix for elements of at least `elem_min` bytes,
/// refusing lengths the remaining buffer cannot possibly satisfy — a
/// corrupt prefix must fail cleanly, not allocate gigabytes.
///
/// INVARIANT (audited; enforced by the adversarial proptests in
/// `tests/api.rs`): every repeated-field decode in this module goes
/// through here with `elem_min` = the smallest possible encoding of one
/// element, *before* any collection is built. Collection allocations are
/// then bounded by `remaining / elem_min`, so a hostile peer can corrupt
/// a length prefix to at most "the rest of the buffer", never to an
/// OOM-sized reservation. The envelope layer upholds the same rule for
/// its payload length (`EnvelopeHeader::decode` checks the frame limit
/// and, when decoding from a buffer, the bytes actually present).
pub(super) fn read_len(
    buf: &mut impl Buf,
    elem_min: usize,
    decoding: &'static str,
) -> Result<usize, WireError> {
    let len = read_u32(buf, decoding)? as usize;
    need(buf, len.saturating_mul(elem_min), decoding)?;
    Ok(len)
}

/// UTF-8 string as a `u32` byte-length prefix plus the bytes; invalid
/// UTF-8 decodes lossily (the string fields are diagnostics, and a
/// replacement character beats failing the frame that reports a fault).
pub(super) fn encode_str(s: &str, buf: &mut impl BufMut) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(super) fn decode_str(buf: &mut impl Buf, decoding: &'static str) -> Result<String, WireError> {
    let len = read_len(buf, 1, decoding)?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

// ---- repeated field shapes --------------------------------------------

pub(super) fn encode_nodes(nodes: &[u32], buf: &mut impl BufMut) {
    buf.put_u32_le(nodes.len() as u32);
    for &v in nodes {
        buf.put_u32_le(v);
    }
}

pub(super) fn decode_nodes(
    buf: &mut impl Buf,
    decoding: &'static str,
) -> Result<Vec<u32>, WireError> {
    let len = read_len(buf, 4, decoding)?;
    (0..len).map(|_| read_u32(buf, decoding)).collect()
}

pub(super) fn encode_scores(scores: &[f64], buf: &mut impl BufMut) {
    buf.put_u32_le(scores.len() as u32);
    for &s in scores {
        buf.put_f64_le(s);
    }
}

pub(super) fn decode_scores(
    buf: &mut impl Buf,
    decoding: &'static str,
) -> Result<Vec<f64>, WireError> {
    let len = read_len(buf, 8, decoding)?;
    (0..len).map(|_| read_f64(buf, decoding)).collect()
}

pub(super) fn encode_ranked(ranked: &[(u32, f64)], buf: &mut impl BufMut) {
    buf.put_u32_le(ranked.len() as u32);
    for &(v, s) in ranked {
        buf.put_u32_le(v);
        buf.put_f64_le(s);
    }
}

pub(super) fn decode_ranked(
    buf: &mut impl Buf,
    decoding: &'static str,
) -> Result<Vec<(u32, f64)>, WireError> {
    let len = read_len(buf, 12, decoding)?;
    (0..len).map(|_| Ok((read_u32(buf, decoding)?, read_f64(buf, decoding)?))).collect()
}

impl WireCodec for StepDistributions {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.source);
        buf.put_u32_le(self.walkers);
        buf.put_u32_le(self.counts.len() as u32);
        for step in &self.counts {
            buf.put_u32_le(step.len() as u32);
            for &(v, c) in step {
                buf.put_u32_le(v);
                buf.put_u64_le(c);
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "StepDistributions";
        let source = read_u32(buf, WHAT)?;
        let walkers = read_u32(buf, WHAT)?;
        let steps = read_len(buf, 4, WHAT)?;
        let counts = (0..steps)
            .map(|_| {
                let len = read_len(buf, 12, WHAT)?;
                (0..len).map(|_| Ok((read_u32(buf, WHAT)?, read_u64(buf, WHAT)?))).collect()
            })
            .collect::<Result<_, _>>()?;
        Ok(StepDistributions { source, walkers, counts })
    }

    fn encoded_len(&self) -> usize {
        12 + self.counts.iter().map(|step| 4 + 12 * step.len()).sum::<usize>()
    }
}

// ---- requests ----------------------------------------------------------

const REQ_SINGLE_PAIR: u8 = 0;
const REQ_SINGLE_SOURCE: u8 = 1;
const REQ_SINGLE_SOURCE_PUSH: u8 = 2;
const REQ_SINGLE_SOURCE_TOPK: u8 = 3;
const REQ_PAIRS_MATRIX: u8 = 4;
const REQ_COHORT: u8 = 5;
const REQ_BATCH: u8 = 6;

fn decode_request_at(buf: &mut impl Buf, depth: usize) -> Result<QueryRequest, WireError> {
    const WHAT: &str = "QueryRequest";
    Ok(match read_u8(buf, WHAT)? {
        REQ_SINGLE_PAIR => {
            QueryRequest::SinglePair { i: read_u32(buf, WHAT)?, j: read_u32(buf, WHAT)? }
        }
        REQ_SINGLE_SOURCE => QueryRequest::SingleSource { i: read_u32(buf, WHAT)? },
        REQ_SINGLE_SOURCE_PUSH => QueryRequest::SingleSourcePush { i: read_u32(buf, WHAT)? },
        REQ_SINGLE_SOURCE_TOPK => {
            QueryRequest::SingleSourceTopK { i: read_u32(buf, WHAT)?, k: read_u64(buf, WHAT)? }
        }
        REQ_PAIRS_MATRIX => QueryRequest::PairsMatrix {
            rows: decode_nodes(buf, WHAT)?,
            cols: decode_nodes(buf, WHAT)?,
        },
        REQ_COHORT => QueryRequest::Cohort { v: read_u32(buf, WHAT)? },
        REQ_BATCH => {
            if depth >= MAX_BATCH_DEPTH {
                return Err(WireError::TooDeep);
            }
            // Members are ≥ 1 byte each (their own tag).
            let len = read_len(buf, 1, WHAT)?;
            QueryRequest::Batch(
                (0..len).map(|_| decode_request_at(buf, depth + 1)).collect::<Result<_, _>>()?,
            )
        }
        tag => return Err(WireError::UnknownTag { decoding: WHAT, tag }),
    })
}

impl WireCodec for QueryRequest {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            QueryRequest::SinglePair { i, j } => {
                buf.put_u8(REQ_SINGLE_PAIR);
                buf.put_u32_le(*i);
                buf.put_u32_le(*j);
            }
            QueryRequest::SingleSource { i } => {
                buf.put_u8(REQ_SINGLE_SOURCE);
                buf.put_u32_le(*i);
            }
            QueryRequest::SingleSourcePush { i } => {
                buf.put_u8(REQ_SINGLE_SOURCE_PUSH);
                buf.put_u32_le(*i);
            }
            QueryRequest::SingleSourceTopK { i, k } => {
                buf.put_u8(REQ_SINGLE_SOURCE_TOPK);
                buf.put_u32_le(*i);
                buf.put_u64_le(*k);
            }
            QueryRequest::PairsMatrix { rows, cols } => {
                buf.put_u8(REQ_PAIRS_MATRIX);
                encode_nodes(rows, buf);
                encode_nodes(cols, buf);
            }
            QueryRequest::Cohort { v } => {
                buf.put_u8(REQ_COHORT);
                buf.put_u32_le(*v);
            }
            QueryRequest::Batch(reqs) => {
                buf.put_u8(REQ_BATCH);
                buf.put_u32_le(reqs.len() as u32);
                for r in reqs {
                    r.encode(buf);
                }
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        decode_request_at(buf, 0)
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            QueryRequest::SinglePair { .. } => 8,
            QueryRequest::SingleSource { .. }
            | QueryRequest::SingleSourcePush { .. }
            | QueryRequest::Cohort { .. } => 4,
            QueryRequest::SingleSourceTopK { .. } => 12,
            QueryRequest::PairsMatrix { rows, cols } => 8 + 4 * (rows.len() + cols.len()),
            QueryRequest::Batch(reqs) => 4 + reqs.iter().map(Self::encoded_len).sum::<usize>(),
        }
    }
}

// ---- responses ---------------------------------------------------------

const RESP_SCORE: u8 = 0;
const RESP_SCORES: u8 = 1;
const RESP_RANKED: u8 = 2;
const RESP_MATRIX: u8 = 3;
const RESP_COHORT: u8 = 4;
const RESP_BATCH: u8 = 5;

fn decode_response_at(buf: &mut impl Buf, depth: usize) -> Result<QueryResponse, WireError> {
    const WHAT: &str = "QueryResponse";
    Ok(match read_u8(buf, WHAT)? {
        RESP_SCORE => QueryResponse::Score(read_f64(buf, WHAT)?),
        RESP_SCORES => QueryResponse::Scores(decode_scores(buf, WHAT)?),
        RESP_RANKED => QueryResponse::Ranked(decode_ranked(buf, WHAT)?),
        RESP_MATRIX => {
            // Rows are ≥ 4 bytes each (their own length prefix).
            let len = read_len(buf, 4, WHAT)?;
            QueryResponse::Matrix(
                (0..len).map(|_| decode_scores(buf, WHAT)).collect::<Result<_, _>>()?,
            )
        }
        RESP_COHORT => QueryResponse::Cohort(StepDistributions::decode(buf)?),
        RESP_BATCH => {
            if depth >= MAX_BATCH_DEPTH {
                return Err(WireError::TooDeep);
            }
            let len = read_len(buf, 1, WHAT)?;
            QueryResponse::Batch(
                (0..len).map(|_| decode_response_at(buf, depth + 1)).collect::<Result<_, _>>()?,
            )
        }
        tag => return Err(WireError::UnknownTag { decoding: WHAT, tag }),
    })
}

impl WireCodec for QueryResponse {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            QueryResponse::Score(s) => {
                buf.put_u8(RESP_SCORE);
                buf.put_f64_le(*s);
            }
            QueryResponse::Scores(row) => {
                buf.put_u8(RESP_SCORES);
                encode_scores(row, buf);
            }
            QueryResponse::Ranked(list) => {
                buf.put_u8(RESP_RANKED);
                encode_ranked(list, buf);
            }
            QueryResponse::Matrix(rows) => {
                buf.put_u8(RESP_MATRIX);
                buf.put_u32_le(rows.len() as u32);
                for row in rows {
                    encode_scores(row, buf);
                }
            }
            QueryResponse::Cohort(dists) => {
                buf.put_u8(RESP_COHORT);
                dists.encode(buf);
            }
            QueryResponse::Batch(items) => {
                buf.put_u8(RESP_BATCH);
                buf.put_u32_le(items.len() as u32);
                for item in items {
                    item.encode(buf);
                }
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        decode_response_at(buf, 0)
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            QueryResponse::Score(_) => 8,
            QueryResponse::Scores(row) => 4 + 8 * row.len(),
            QueryResponse::Ranked(list) => 4 + 12 * list.len(),
            QueryResponse::Matrix(rows) => 4 + rows.iter().map(|r| 4 + 8 * r.len()).sum::<usize>(),
            QueryResponse::Cohort(dists) => dists.encoded_len(),
            QueryResponse::Batch(items) => 4 + items.iter().map(Self::encoded_len).sum::<usize>(),
        }
    }
}

// ---- errors ------------------------------------------------------------

const ERR_NODE_OUT_OF_RANGE: u8 = 0;
const ERR_INVALID_K: u8 = 1;
const ERR_EMPTY_BATCH: u8 = 2;
const ERR_EMPTY_NODE_SET: u8 = 3;
const ERR_NESTED_BATCH: u8 = 4;
const ERR_RESPONSE_TOO_LARGE: u8 = 5;
const ERR_WORKER_UNAVAILABLE: u8 = 6;
const ERR_UNSUPPORTED: u8 = 7;

impl WireCodec for QueryError {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            QueryError::NodeOutOfRange { node, node_count } => {
                buf.put_u8(ERR_NODE_OUT_OF_RANGE);
                buf.put_u32_le(*node);
                buf.put_u32_le(*node_count);
            }
            QueryError::InvalidK { k } => {
                buf.put_u8(ERR_INVALID_K);
                buf.put_u64_le(*k);
            }
            QueryError::EmptyBatch => buf.put_u8(ERR_EMPTY_BATCH),
            QueryError::EmptyNodeSet => buf.put_u8(ERR_EMPTY_NODE_SET),
            QueryError::NestedBatch => buf.put_u8(ERR_NESTED_BATCH),
            QueryError::ResponseTooLarge { bytes, max_frame } => {
                buf.put_u8(ERR_RESPONSE_TOO_LARGE);
                buf.put_u64_le(*bytes);
                buf.put_u32_le(*max_frame);
            }
            QueryError::WorkerUnavailable { detail } => {
                buf.put_u8(ERR_WORKER_UNAVAILABLE);
                encode_str(detail, buf);
            }
            QueryError::Unsupported { detail } => {
                buf.put_u8(ERR_UNSUPPORTED);
                encode_str(detail, buf);
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "QueryError";
        Ok(match read_u8(buf, WHAT)? {
            ERR_NODE_OUT_OF_RANGE => QueryError::NodeOutOfRange {
                node: read_u32(buf, WHAT)?,
                node_count: read_u32(buf, WHAT)?,
            },
            ERR_INVALID_K => QueryError::InvalidK { k: read_u64(buf, WHAT)? },
            ERR_EMPTY_BATCH => QueryError::EmptyBatch,
            ERR_EMPTY_NODE_SET => QueryError::EmptyNodeSet,
            ERR_NESTED_BATCH => QueryError::NestedBatch,
            ERR_RESPONSE_TOO_LARGE => QueryError::ResponseTooLarge {
                bytes: read_u64(buf, WHAT)?,
                max_frame: read_u32(buf, WHAT)?,
            },
            ERR_WORKER_UNAVAILABLE => {
                QueryError::WorkerUnavailable { detail: decode_str(buf, WHAT)? }
            }
            ERR_UNSUPPORTED => QueryError::Unsupported { detail: decode_str(buf, WHAT)? },
            tag => return Err(WireError::UnknownTag { decoding: WHAT, tag }),
        })
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            QueryError::NodeOutOfRange { .. } => 8,
            QueryError::InvalidK { .. } => 8,
            QueryError::EmptyBatch | QueryError::EmptyNodeSet | QueryError::NestedBatch => 0,
            QueryError::ResponseTooLarge { .. } => 12,
            QueryError::WorkerUnavailable { detail } => 4 + detail.len(),
            QueryError::Unsupported { detail } => 4 + detail.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(bytes.len(), value.encoded_len(), "encoded_len must be exact");
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
    }

    #[test]
    fn every_request_variant_roundtrips() {
        roundtrip(QueryRequest::SinglePair { i: 3, j: u32::MAX });
        roundtrip(QueryRequest::SingleSource { i: 0 });
        roundtrip(QueryRequest::SingleSourcePush { i: 17 });
        roundtrip(QueryRequest::SingleSourceTopK { i: 9, k: u64::MAX });
        roundtrip(QueryRequest::PairsMatrix { rows: vec![1, 2, 3], cols: vec![] });
        roundtrip(QueryRequest::Cohort { v: 41 });
        roundtrip(QueryRequest::Batch(vec![
            QueryRequest::SinglePair { i: 1, j: 2 },
            QueryRequest::PairsMatrix { rows: vec![5], cols: vec![6, 7] },
        ]));
    }

    #[test]
    fn every_response_variant_roundtrips() {
        roundtrip(QueryResponse::Score(0.25));
        roundtrip(QueryResponse::Scores(vec![0.0, 1.0, f64::MIN_POSITIVE]));
        roundtrip(QueryResponse::Ranked(vec![(4, 0.5), (2, 0.125)]));
        roundtrip(QueryResponse::Matrix(vec![vec![1.0, 0.5], vec![], vec![0.25]]));
        roundtrip(QueryResponse::Cohort(StepDistributions {
            source: 3,
            walkers: 100,
            counts: vec![vec![(3, 100)], vec![(1, 60), (2, 38)], vec![]],
        }));
        roundtrip(QueryResponse::Batch(vec![
            QueryResponse::Score(1.0),
            QueryResponse::Ranked(vec![]),
        ]));
    }

    #[test]
    fn every_error_variant_roundtrips() {
        roundtrip(QueryError::NodeOutOfRange { node: 9, node_count: 5 });
        roundtrip(QueryError::InvalidK { k: 0 });
        roundtrip(QueryError::EmptyBatch);
        roundtrip(QueryError::EmptyNodeSet);
        roundtrip(QueryError::NestedBatch);
        roundtrip(QueryError::ResponseTooLarge { bytes: u64::MAX, max_frame: 1 << 20 });
        roundtrip(QueryError::WorkerUnavailable { detail: "worker 3: link down".into() });
        roundtrip(QueryError::Unsupported { detail: "push MCSS needs the resident CSR".into() });
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let bytes = QueryRequest::PairsMatrix { rows: vec![1, 2, 3], cols: vec![4] }.to_bytes();
        for cut in 0..bytes.len() {
            let err = QueryRequest::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, WireError::Truncated { .. }), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert_eq!(
            QueryRequest::from_bytes(&[200]),
            Err(WireError::UnknownTag { decoding: "QueryRequest", tag: 200 })
        );
        assert_eq!(
            QueryResponse::from_bytes(&[99]),
            Err(WireError::UnknownTag { decoding: "QueryResponse", tag: 99 })
        );
        let mut bytes = QueryRequest::Cohort { v: 1 }.to_bytes();
        bytes.push(0);
        assert_eq!(
            QueryRequest::from_bytes(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn corrupt_length_prefix_fails_cleanly_without_allocating() {
        // Tag SCORES + length u32::MAX, then nothing: must refuse, fast.
        let mut bytes = vec![RESP_SCORES];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(QueryResponse::from_bytes(&bytes), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn hostile_deep_nesting_is_rejected_not_a_stack_overflow() {
        // A buffer that is just BATCH headers nested 100k deep.
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(REQ_BATCH);
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        assert_eq!(QueryRequest::from_bytes(&bytes), Err(WireError::TooDeep));
        // In-limit nesting still round-trips.
        let nested =
            QueryRequest::Batch(vec![QueryRequest::Batch(vec![QueryRequest::Cohort { v: 1 }])]);
        roundtrip(nested);
    }

    #[test]
    fn scores_roundtrip_bit_exactly() {
        // -0.0 and subnormals survive; equality on bits, not on ==.
        let resp = QueryResponse::Scores(vec![-0.0, 5e-324, 1.0 - f64::EPSILON]);
        let back = QueryResponse::from_bytes(&resp.to_bytes()).unwrap();
        match (resp, back) {
            (QueryResponse::Scores(a), QueryResponse::Scores(b)) => {
                assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
            _ => unreachable!(),
        }
    }
}
