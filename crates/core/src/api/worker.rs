//! Wire payloads of the coordinator ⇄ worker protocol — the messages
//! behind the worker-control frame kinds
//! ([`FrameKind::LoadPartition`] … [`FrameKind::WorkerStats`]).
//!
//! The distributed substrate splits CloudWalker across processes: a
//! coordinator ([`crate::engine::distributed::DistributedEngine`]) that
//! partitions the graph and routes queries by source, and workers
//! (`pasco_worker`) that each own one partition's sources. Everything
//! they exchange is a [`WireCodec`] value inside an envelope frame:
//!
//! | kind | request payload | reply payload |
//! |---|---|---|
//! | `LoadPartition` | [`LoadPartition`] | [`LoadAck`] |
//! | `BuildShard` | [`BuildShard`] | [`BuildShardReply`] |
//! | `ShardQuery` | [`ShardQuery`] | [`super::QueryResponse`] |
//! | `ShardTopK` | [`ShardTopK`] | [`ShardTopKReply`] |
//! | `WorkerStats` | *(empty)* | [`WorkerStats`] |
//! | `LoadStore` | [`LoadStore`] | [`LoadAck`] |
//!
//! A failed request comes back as a [`FrameKind::Error`] frame carrying
//! a [`super::QueryError`] — same contract as the query protocol.
//!
//! Shipping the diagonal with every query would dominate query traffic
//! (`8n` bytes against a handful for the request), so [`DiagPayload`]
//! carries a fingerprint and ships the values only when the worker has
//! not acknowledged that fingerprint yet — the coordinator tracks per
//! worker what it last shipped.
//!
//! [`FrameKind::LoadPartition`]: super::envelope::FrameKind::LoadPartition
//! [`FrameKind::WorkerStats`]: super::envelope::FrameKind::WorkerStats
//! [`FrameKind::Error`]: super::envelope::FrameKind::Error

use super::wire::{
    self, decode_ranked, decode_scores, decode_str, encode_ranked, encode_scores, encode_str,
    read_f64, read_len, read_u32, read_u64, read_u8, WireCodec, WireError,
};
use crate::config::{AiStrategy, SimRankConfig};
use bytes::{Buf, BufMut};
use pasco_graph::partitioned::GraphPartition;
use pasco_graph::NodeId;

/// A stable fingerprint of a diagonal index (FNV-1a over the IEEE bit
/// patterns plus the length), used to avoid re-shipping the diagonal on
/// every routed query. Not cryptographic — it guards against stale
/// caches, not adversaries; a coordinator that must not trust its
/// workers should re-ship (`DiagPayload::full`) every time.
pub fn diag_fingerprint(diag: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in (diag.len() as u64).to_le_bytes() {
        mix(b);
    }
    for v in diag {
        for b in v.to_bits().to_le_bytes() {
            mix(b);
        }
    }
    h
}

/// The diagonal index as query luggage: always the fingerprint, plus
/// the values when the receiving worker has not cached that fingerprint.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagPayload {
    /// [`diag_fingerprint`] of the diagonal this query scores against.
    pub fingerprint: u64,
    /// The diagonal values, present on the first query per (worker,
    /// diagonal) and absent once the worker has acknowledged the
    /// fingerprint.
    pub values: Option<Vec<f64>>,
}

impl DiagPayload {
    /// A payload shipping the full diagonal.
    pub fn full(diag: &[f64]) -> Self {
        DiagPayload { fingerprint: diag_fingerprint(diag), values: Some(diag.to_vec()) }
    }

    /// A payload referencing a diagonal the worker already holds.
    pub fn cached(fingerprint: u64) -> Self {
        DiagPayload { fingerprint, values: None }
    }
}

impl WireCodec for DiagPayload {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.fingerprint);
        match &self.values {
            None => buf.put_u8(0),
            Some(values) => {
                buf.put_u8(1);
                encode_scores(values, buf);
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "DiagPayload";
        let fingerprint = read_u64(buf, WHAT)?;
        let values = match read_u8(buf, WHAT)? {
            0 => None,
            1 => Some(decode_scores(buf, WHAT)?),
            tag => return Err(WireError::UnknownTag { decoding: WHAT, tag }),
        };
        Ok(DiagPayload { fingerprint, values })
    }

    fn encoded_len(&self) -> usize {
        9 + self.values.as_ref().map_or(0, |v| 4 + 8 * v.len())
    }
}

// ---- configuration ------------------------------------------------------

impl WireCodec for SimRankConfig {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_f64_le(self.c);
        buf.put_u64_le(self.t as u64);
        buf.put_u64_le(self.l as u64);
        buf.put_u32_le(self.r);
        buf.put_u32_le(self.r_query);
        buf.put_u32_le(self.r_forward);
        buf.put_u64_le(self.seed);
        match self.ai_strategy {
            AiStrategy::Store => buf.put_u8(0),
            AiStrategy::Recompute => buf.put_u8(1),
            AiStrategy::Auto { budget_bytes } => {
                buf.put_u8(2);
                buf.put_u64_le(budget_bytes);
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "SimRankConfig";
        Ok(SimRankConfig {
            c: read_f64(buf, WHAT)?,
            t: read_u64(buf, WHAT)? as usize,
            l: read_u64(buf, WHAT)? as usize,
            r: read_u32(buf, WHAT)?,
            r_query: read_u32(buf, WHAT)?,
            r_forward: read_u32(buf, WHAT)?,
            seed: read_u64(buf, WHAT)?,
            ai_strategy: match read_u8(buf, WHAT)? {
                0 => AiStrategy::Store,
                1 => AiStrategy::Recompute,
                2 => AiStrategy::Auto { budget_bytes: read_u64(buf, WHAT)? },
                tag => return Err(WireError::UnknownTag { decoding: WHAT, tag }),
            },
        })
    }

    fn encoded_len(&self) -> usize {
        45 + match self.ai_strategy {
            AiStrategy::Auto { .. } => 8,
            _ => 0,
        }
    }
}

// ---- partitions ---------------------------------------------------------

fn encode_offsets(offsets: &[u64], buf: &mut impl BufMut) {
    buf.put_u32_le(offsets.len() as u32);
    for &o in offsets {
        buf.put_u64_le(o);
    }
}

fn decode_offsets(buf: &mut impl Buf, decoding: &'static str) -> Result<Vec<u64>, WireError> {
    let len = read_len(buf, 8, decoding)?;
    (0..len).map(|_| read_u64(buf, decoding)).collect()
}

impl WireCodec for GraphPartition {
    fn encode(&self, buf: &mut impl BufMut) {
        let (in_offsets, in_sources, out_offsets, out_targets, out_cum, out_total) =
            self.raw_arrays();
        buf.put_u32_le(self.start);
        buf.put_u32_le(self.end);
        encode_offsets(in_offsets, buf);
        wire::encode_nodes(in_sources, buf);
        encode_offsets(out_offsets, buf);
        wire::encode_nodes(out_targets, buf);
        encode_scores(out_cum, buf);
        encode_scores(out_total, buf);
    }

    /// Decoding validates the layout contract of
    /// [`GraphPartition::from_raw`] *before* constructing, so hostile
    /// bytes surface as [`WireError::Invalid`], never a panic.
    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "GraphPartition";
        let invalid = |reason| WireError::Invalid { decoding: WHAT, reason };
        let start = read_u32(buf, WHAT)?;
        let end = read_u32(buf, WHAT)?;
        let in_offsets = decode_offsets(buf, WHAT)?;
        let in_sources = wire::decode_nodes(buf, WHAT)?;
        let out_offsets = decode_offsets(buf, WHAT)?;
        let out_targets = wire::decode_nodes(buf, WHAT)?;
        let out_cum = decode_scores(buf, WHAT)?;
        let out_total = decode_scores(buf, WHAT)?;
        if end < start {
            return Err(invalid("end before start"));
        }
        let count = (end - start) as usize;
        if in_offsets.len() != count + 1 || out_offsets.len() != count + 1 {
            return Err(invalid("offset arrays must have count + 1 entries"));
        }
        if out_total.len() != count {
            return Err(invalid("out_total must have one entry per owned node"));
        }
        if out_cum.len() != out_targets.len() {
            return Err(invalid("out_cum must parallel out_targets"));
        }
        for offsets in [&in_offsets, &out_offsets] {
            if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(invalid("offsets must be monotone from 0"));
            }
        }
        if *in_offsets.last().unwrap() != in_sources.len() as u64
            || *out_offsets.last().unwrap() != out_targets.len() as u64
        {
            return Err(invalid("offsets must end at the adjacency length"));
        }
        Ok(GraphPartition::from_raw(
            start,
            end,
            in_offsets,
            in_sources,
            out_offsets,
            out_targets,
            out_cum,
            out_total,
        ))
    }

    fn encoded_len(&self) -> usize {
        let (in_offsets, in_sources, out_offsets, out_targets, out_cum, out_total) =
            self.raw_arrays();
        8 + (4 + 8 * in_offsets.len())
            + (4 + 4 * in_sources.len())
            + (4 + 8 * out_offsets.len())
            + (4 + 4 * out_targets.len())
            + (4 + 8 * out_cum.len())
            + (4 + 8 * out_total.len())
    }
}

/// One partition shipped to one worker. Every worker receives **all**
/// `parts` partitions — the reverse and forward walk kernels follow
/// edges across partition boundaries, so full adjacency must be
/// resident (the paper's broadcast side of the hybrid) — while
/// `owned_part` names the single partition whose sources this worker
/// builds rows for and answers queries about (the partition-by-source
/// side).
#[derive(Clone, Debug, PartialEq)]
pub struct LoadPartition {
    /// Total node count of the partitioned graph.
    pub n: u32,
    /// How many partitions the graph was split into.
    pub parts: u32,
    /// The partition index this *worker* owns (constant across the
    /// worker's `LoadPartition` frames).
    pub owned_part: u32,
    /// Which partition this frame carries.
    pub part_index: u32,
    /// The partition's adjacency arrays.
    pub partition: GraphPartition,
}

impl WireCodec for LoadPartition {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.n);
        buf.put_u32_le(self.parts);
        buf.put_u32_le(self.owned_part);
        buf.put_u32_le(self.part_index);
        self.partition.encode(buf);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "LoadPartition";
        Ok(LoadPartition {
            n: read_u32(buf, WHAT)?,
            parts: read_u32(buf, WHAT)?,
            owned_part: read_u32(buf, WHAT)?,
            part_index: read_u32(buf, WHAT)?,
            partition: GraphPartition::decode(buf)?,
        })
    }

    fn encoded_len(&self) -> usize {
        16 + self.partition.encoded_len()
    }
}

/// Out-of-core provisioning: instead of receiving `parts` partitions
/// over the wire, the worker maps the named store directory in place
/// (one `PASCOSH1` shard file per partition) and serves straight from
/// the page cache. The directory must be reachable on the *worker's*
/// filesystem — shared storage, or a store copied there beforehand —
/// which is exactly the point: a few dozen bytes of path replace the
/// `O(E)` adjacency shuffle, and the store's on-disk diagonal index
/// rides along for free. Acknowledged with a [`LoadAck`] whose
/// `resident_bytes` reports *mapped* (lazily paged) bytes and whose
/// `loaded` jumps straight to `parts`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadStore {
    /// Path of the store directory on the worker's filesystem.
    pub dir: String,
    /// The partition index whose sources this worker serves.
    pub owned_part: u32,
}

impl WireCodec for LoadStore {
    fn encode(&self, buf: &mut impl BufMut) {
        encode_str(&self.dir, buf);
        buf.put_u32_le(self.owned_part);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "LoadStore";
        Ok(LoadStore { dir: decode_str(buf, WHAT)?, owned_part: read_u32(buf, WHAT)? })
    }

    fn encoded_len(&self) -> usize {
        8 + self.dir.len()
    }
}

/// The worker's acknowledgement of one [`LoadPartition`] frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadAck {
    /// Partition bytes resident on the worker after this load (all
    /// partitions received so far).
    pub resident_bytes: u64,
    /// How many of the announced partitions the worker now holds; the
    /// worker is query-ready when this reaches `parts`.
    pub loaded: u32,
}

impl WireCodec for LoadAck {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.resident_bytes);
        buf.put_u32_le(self.loaded);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "LoadAck";
        Ok(LoadAck { resident_bytes: read_u64(buf, WHAT)?, loaded: read_u32(buf, WHAT)? })
    }

    fn encoded_len(&self) -> usize {
        12
    }
}

/// The shard-local offline build: walk every owned source's `R`-walker
/// cohort and materialise its row of the linear system. The rows return
/// to the coordinator, which runs the (cheap, `O(nnz)`-per-sweep)
/// Jacobi solve over the assembled system — the walk work, which
/// dominates the offline phase, is what distributes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BuildShard {
    /// The full CloudWalker parameter set (walks derive from `seed`, so
    /// shipping it preserves bit-identical rows).
    pub cfg: SimRankConfig,
}

impl WireCodec for BuildShard {
    fn encode(&self, buf: &mut impl BufMut) {
        self.cfg.encode(buf);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(BuildShard { cfg: SimRankConfig::decode(buf)? })
    }

    fn encoded_len(&self) -> usize {
        self.cfg.encoded_len()
    }
}

/// The worker's owned rows, in owned-node order (`start..end`).
#[derive(Clone, Debug, PartialEq)]
pub struct BuildShardReply {
    /// Row `i - start` is the sparse system row `aᵢ`, sorted by column.
    pub rows: Vec<Vec<(NodeId, f64)>>,
}

impl WireCodec for BuildShardReply {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.rows.len() as u32);
        for row in &self.rows {
            encode_ranked(row, buf);
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "BuildShardReply";
        // Rows are ≥ 4 bytes each (their own length prefix).
        let len = read_len(buf, 4, WHAT)?;
        Ok(BuildShardReply {
            rows: (0..len).map(|_| decode_ranked(buf, WHAT)).collect::<Result<_, _>>()?,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + self.rows.iter().map(|r| 4 + 12 * r.len()).sum::<usize>()
    }
}

/// Which query a [`ShardQuery`] carries. Only the kinds whose whole
/// computation runs on the owning worker appear here; top-`k` has its
/// own frame ([`ShardTopK`]) because its reply shape (per-partition
/// rankings for the coordinator's merge) differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardQueryKind {
    /// MCSP: both cohorts simulated on the worker owning `i`.
    SinglePair {
        /// First node (the routing key).
        i: NodeId,
        /// Second node.
        j: NodeId,
    },
    /// Dense MCSS from `i`.
    SingleSource {
        /// The query node (the routing key).
        i: NodeId,
    },
    /// The raw query cohort of `v`.
    Cohort {
        /// The cohort's source (the routing key).
        v: NodeId,
    },
}

const SHARD_SINGLE_PAIR: u8 = 0;
const SHARD_SINGLE_SOURCE: u8 = 1;
const SHARD_COHORT: u8 = 2;

/// One routed query: the config and diagonal it scores against plus the
/// query itself. Answered with a [`super::QueryResponse`] payload
/// (`Score` / `Scores` / `Cohort`).
#[derive(Clone, Debug, PartialEq)]
pub struct ShardQuery {
    /// The CloudWalker parameters (query walks derive from `cfg.seed`).
    pub cfg: SimRankConfig,
    /// The diagonal index, by fingerprint or in full.
    pub diag: DiagPayload,
    /// The query.
    pub kind: ShardQueryKind,
}

impl WireCodec for ShardQuery {
    fn encode(&self, buf: &mut impl BufMut) {
        self.cfg.encode(buf);
        self.diag.encode(buf);
        match self.kind {
            ShardQueryKind::SinglePair { i, j } => {
                buf.put_u8(SHARD_SINGLE_PAIR);
                buf.put_u32_le(i);
                buf.put_u32_le(j);
            }
            ShardQueryKind::SingleSource { i } => {
                buf.put_u8(SHARD_SINGLE_SOURCE);
                buf.put_u32_le(i);
            }
            ShardQueryKind::Cohort { v } => {
                buf.put_u8(SHARD_COHORT);
                buf.put_u32_le(v);
            }
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "ShardQuery";
        let cfg = SimRankConfig::decode(buf)?;
        let diag = DiagPayload::decode(buf)?;
        let kind = match read_u8(buf, WHAT)? {
            SHARD_SINGLE_PAIR => {
                ShardQueryKind::SinglePair { i: read_u32(buf, WHAT)?, j: read_u32(buf, WHAT)? }
            }
            SHARD_SINGLE_SOURCE => ShardQueryKind::SingleSource { i: read_u32(buf, WHAT)? },
            SHARD_COHORT => ShardQueryKind::Cohort { v: read_u32(buf, WHAT)? },
            tag => return Err(WireError::UnknownTag { decoding: WHAT, tag }),
        };
        Ok(ShardQuery { cfg, diag, kind })
    }

    fn encoded_len(&self) -> usize {
        self.cfg.encoded_len()
            + self.diag.encoded_len()
            + match self.kind {
                ShardQueryKind::SinglePair { .. } => 9,
                ShardQueryKind::SingleSource { .. } | ShardQueryKind::Cohort { .. } => 5,
            }
    }
}

/// The distributed top-`k` plan's routed stage: the worker owning `i`
/// accumulates the sparse masses, splits the candidates by owning
/// partition, ranks each split, and replies with the per-partition
/// rankings ([`ShardTopKReply`]) — only `parts × k` entries cross the
/// wire, and the coordinator finishes with the shared k-way merge.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardTopK {
    /// The CloudWalker parameters.
    pub cfg: SimRankConfig,
    /// The diagonal index, by fingerprint or in full.
    pub diag: DiagPayload,
    /// The query node (the routing key).
    pub i: NodeId,
    /// How many neighbours to return.
    pub k: u64,
}

impl WireCodec for ShardTopK {
    fn encode(&self, buf: &mut impl BufMut) {
        self.cfg.encode(buf);
        self.diag.encode(buf);
        buf.put_u32_le(self.i);
        buf.put_u64_le(self.k);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "ShardTopK";
        Ok(ShardTopK {
            cfg: SimRankConfig::decode(buf)?,
            diag: DiagPayload::decode(buf)?,
            i: read_u32(buf, WHAT)?,
            k: read_u64(buf, WHAT)?,
        })
    }

    fn encoded_len(&self) -> usize {
        self.cfg.encoded_len() + self.diag.encoded_len() + 12
    }
}

/// Per-partition top-`k` rankings, each sorted by the shared ranking
/// comparator, in partition order.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardTopKReply {
    /// `lists[p]` ranks the candidates owned by partition `p`.
    pub lists: Vec<Vec<(NodeId, f64)>>,
}

impl WireCodec for ShardTopKReply {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.lists.len() as u32);
        for list in &self.lists {
            encode_ranked(list, buf);
        }
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "ShardTopKReply";
        let len = read_len(buf, 4, WHAT)?;
        Ok(ShardTopKReply {
            lists: (0..len).map(|_| decode_ranked(buf, WHAT)).collect::<Result<_, _>>()?,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + self.lists.iter().map(|l| 4 + 12 * l.len()).sum::<usize>()
    }
}

/// A worker's runtime report — the per-worker rows of the distributed
/// substrate's accounting, alongside the coordinator's
/// [`pasco_cluster::ClusterReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The partition whose sources this worker serves.
    pub owned_part: u32,
    /// How many nodes that partition owns.
    pub owned_nodes: u32,
    /// Bytes of all resident partitions (full adjacency).
    pub resident_bytes: u64,
    /// Bytes of the owned partition alone — the per-worker share that
    /// shrinks as workers are added.
    pub owned_bytes: u64,
    /// Offline builds served.
    pub builds: u64,
    /// Routed [`ShardQuery`] requests served.
    pub queries: u64,
    /// Routed [`ShardTopK`] requests served.
    pub topk_queries: u64,
}

impl WireCodec for WorkerStats {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32_le(self.owned_part);
        buf.put_u32_le(self.owned_nodes);
        buf.put_u64_le(self.resident_bytes);
        buf.put_u64_le(self.owned_bytes);
        buf.put_u64_le(self.builds);
        buf.put_u64_le(self.queries);
        buf.put_u64_le(self.topk_queries);
    }

    fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        const WHAT: &str = "WorkerStats";
        Ok(WorkerStats {
            owned_part: read_u32(buf, WHAT)?,
            owned_nodes: read_u32(buf, WHAT)?,
            resident_bytes: read_u64(buf, WHAT)?,
            owned_bytes: read_u64(buf, WHAT)?,
            builds: read_u64(buf, WHAT)?,
            queries: read_u64(buf, WHAT)?,
            topk_queries: read_u64(buf, WHAT)?,
        })
    }

    fn encoded_len(&self) -> usize {
        48
    }
}

/// An empty payload (the [`WorkerStats`] request body).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Empty;

impl WireCodec for Empty {
    fn encode(&self, _buf: &mut impl BufMut) {}

    fn decode(_buf: &mut impl Buf) -> Result<Self, WireError> {
        Ok(Empty)
    }

    fn encoded_len(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::partition::Partitioner;
    use pasco_graph::partitioned::partition_graph;
    use pasco_graph::{generators, NodeId};

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(bytes.len(), value.encoded_len(), "encoded_len must be exact");
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
    }

    fn sample_partition() -> GraphPartition {
        let g = generators::barabasi_albert(60, 3, 5);
        partition_graph(&g, &Partitioner::range(60, 3)).remove(1)
    }

    #[test]
    fn partition_roundtrips_and_serves_identical_adjacency() {
        let gp = sample_partition();
        let bytes = gp.to_bytes();
        assert_eq!(bytes.len(), gp.encoded_len());
        let back = GraphPartition::from_bytes(&bytes).unwrap();
        assert_eq!(back, gp);
        for v in gp.start..gp.end {
            assert_eq!(back.in_neighbors(v), gp.in_neighbors(v));
            assert_eq!(back.out_neighbors(v), gp.out_neighbors(v));
            assert_eq!(back.outflow(v).to_bits(), gp.outflow(v).to_bits());
        }
    }

    #[test]
    fn corrupt_partition_is_invalid_not_a_panic() {
        let gp = sample_partition();
        // Stamp the in_offsets length prefix (right after start/end) to a
        // value inconsistent with the node count.
        let mut bytes = gp.to_bytes();
        let wrong = gp.end - gp.start + 5;
        bytes[8..12].copy_from_slice(&wrong.to_le_bytes());
        match GraphPartition::from_bytes(&bytes) {
            Err(WireError::Invalid { .. } | WireError::Truncated { .. }) => {}
            other => panic!("expected invalid/truncated, got {other:?}"),
        }
    }

    #[test]
    fn every_control_payload_roundtrips() {
        let cfg = SimRankConfig::fast().with_seed(77);
        roundtrip(LoadPartition {
            n: 60,
            parts: 3,
            owned_part: 1,
            part_index: 2,
            partition: sample_partition(),
        });
        roundtrip(LoadAck { resident_bytes: 1 << 40, loaded: 2 });
        roundtrip(LoadStore { dir: "/mnt/shared/stores/web-graph".into(), owned_part: 3 });
        roundtrip(LoadStore { dir: String::new(), owned_part: 0 });
        roundtrip(BuildShard { cfg });
        roundtrip(BuildShard { cfg: cfg.with_ai_strategy(AiStrategy::Recompute) });
        roundtrip(BuildShardReply {
            rows: vec![vec![(0, 1.5), (7, 0.25)], vec![], vec![(3, 1.0)]],
        });
        roundtrip(ShardQuery {
            cfg,
            diag: DiagPayload::full(&[0.5, 1.0, 0.25]),
            kind: ShardQueryKind::SinglePair { i: 3, j: 9 },
        });
        roundtrip(ShardQuery {
            cfg,
            diag: DiagPayload::cached(42),
            kind: ShardQueryKind::SingleSource { i: 3 },
        });
        roundtrip(ShardQuery {
            cfg,
            diag: DiagPayload::cached(7),
            kind: ShardQueryKind::Cohort { v: 59 },
        });
        roundtrip(ShardTopK { cfg, diag: DiagPayload::cached(1), i: 4, k: u64::MAX });
        roundtrip(ShardTopKReply {
            lists: vec![vec![(1, 0.5)], vec![], vec![(2, 0.25), (9, 0.1)]],
        });
        roundtrip(WorkerStats {
            owned_part: 2,
            owned_nodes: 20,
            resident_bytes: 4096,
            owned_bytes: 1024,
            builds: 1,
            queries: 17,
            topk_queries: 3,
        });
        roundtrip(Empty);
    }

    #[test]
    fn diag_fingerprint_tracks_content_and_length() {
        let a = [0.5, 0.25, 1.0];
        let b = [0.5, 0.25, 1.0];
        let c = [0.5, 0.25];
        let d = [0.5, 0.25, 1.0 - f64::EPSILON];
        assert_eq!(diag_fingerprint(&a), diag_fingerprint(&b));
        assert_ne!(diag_fingerprint(&a), diag_fingerprint(&c));
        assert_ne!(diag_fingerprint(&a), diag_fingerprint(&d));
        // -0.0 and 0.0 differ bitwise, so they must fingerprint apart
        // (the diagonal comparison everywhere else is bitwise too).
        assert_ne!(diag_fingerprint(&[0.0]), diag_fingerprint(&[-0.0]));
    }

    #[test]
    fn truncation_is_detected_for_control_payloads() {
        let msg = ShardTopK {
            cfg: SimRankConfig::fast(),
            diag: DiagPayload::full(&[0.5; 16]),
            i: 3,
            k: 10,
        };
        let bytes = msg.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    ShardTopK::from_bytes(&bytes[..cut]),
                    Err(WireError::Truncated { .. } | WireError::UnknownTag { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rows_type_matches_node_id_width() {
        // The rows the build ships are the solver's sparse rows; a silent
        // NodeId width change must break this test, not the protocol.
        let row: Vec<(NodeId, f64)> = vec![(u32::MAX, 1.0)];
        roundtrip(BuildShardReply { rows: vec![row] });
    }
}
