//! Compressed-sparse-row graph storage with both edge directions.

/// Node identifier. `u32` comfortably covers the simulated datasets and
/// matches the paper's billion-node ceiling.
pub type NodeId = u32;

/// A directed graph in CSR form, storing **both** out-adjacency and
/// in-adjacency.
///
/// SimRank's random surfer walks along *in-links* ([`CsrGraph::in_neighbors`])
/// while the single-source reverse-chain walk and LIN's sparse pushes walk
/// along *out-links* ([`CsrGraph::out_neighbors`]); keeping both directions
/// materialised makes each walk step two array reads.
///
/// Neighbour lists are sorted ascending, parallel edges collapsed at build
/// time (see [`crate::GraphBuilder`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    n: u32,
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u64>,
    in_sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Assembles a graph from raw CSR arrays. Intended for use by the
    /// builder and the binary loader; validates structural invariants.
    ///
    /// # Panics
    /// Panics if offsets are not monotone, lengths disagree, or a neighbour
    /// id is out of range — these indicate a corrupted input, not a
    /// recoverable condition.
    pub fn from_parts(
        n: u32,
        out_offsets: Vec<u64>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<u64>,
        in_sources: Vec<NodeId>,
    ) -> Self {
        assert_eq!(out_offsets.len(), n as usize + 1, "out_offsets length");
        assert_eq!(in_offsets.len(), n as usize + 1, "in_offsets length");
        assert_eq!(out_offsets.last().copied(), Some(out_targets.len() as u64));
        assert_eq!(in_offsets.last().copied(), Some(in_sources.len() as u64));
        assert_eq!(out_targets.len(), in_sources.len(), "edge count mismatch");
        debug_assert!(out_offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(in_offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(out_targets.iter().all(|&v| v < n));
        debug_assert!(in_sources.iter().all(|&v| v < n));
        Self { n, out_offsets, out_targets, in_offsets, in_sources }
    }

    /// Builds a graph directly from a directed edge list `(u, v)` meaning
    /// `u → v`. Parallel edges are collapsed; self loops kept.
    pub fn from_edges(n: u32, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = crate::GraphBuilder::with_capacity(n, edges.len());
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of directed edges (after deduplication).
    #[inline]
    pub fn edge_count(&self) -> u64 {
        self.out_targets.len() as u64
    }

    /// Nodes `v` with an edge `u → v`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// Nodes `u` with an edge `u → v`, sorted ascending. This is `In(v)`,
    /// the set SimRank walkers step into.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// `|Out(u)|`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> u32 {
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as u32
    }

    /// `|In(v)|`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> u32 {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as u32
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n
    }

    /// Iterator over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Approximate resident size of the CSR arrays in bytes. Used by the
    /// cluster runtime to decide whether the graph fits a worker's broadcast
    /// memory budget (the paper's 401 GB clue-web vs 377 GB/machine wall).
    pub fn memory_bytes(&self) -> u64 {
        (self.out_offsets.len() as u64 + self.in_offsets.len() as u64) * 8
            + (self.out_targets.len() as u64 + self.in_sources.len() as u64) * 4
    }

    /// True if `v` has no in-neighbours: a SimRank walker at `v` terminates.
    #[inline]
    pub fn is_dangling(&self, v: NodeId) -> bool {
        self.in_degree(v) == 0
    }

    /// Raw out-offsets (length `n + 1`), for zero-copy exports.
    pub fn out_offsets(&self) -> &[u64] {
        &self.out_offsets
    }

    /// Raw out-targets, for zero-copy exports.
    pub fn out_targets(&self) -> &[NodeId] {
        &self.out_targets
    }

    /// Raw in-offsets (length `n + 1`), for zero-copy exports.
    pub fn in_offsets(&self) -> &[u64] {
        &self.in_offsets
    }

    /// Raw in-sources, for zero-copy exports.
    pub fn in_sources(&self) -> &[NodeId] {
        &self.in_sources
    }

    /// The transition probability `P[u][v] = 1/|In(v)|` if `u ∈ In(v)`,
    /// else 0. Exposed mainly for tests and the exact baselines; hot paths
    /// never materialise `P`.
    pub fn transition_prob(&self, u: NodeId, v: NodeId) -> f64 {
        let ins = self.in_neighbors(v);
        if ins.binary_search(&u).is_ok() {
            1.0 / ins.len() as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert!(g.is_dangling(0));
        assert!(!g.is_dangling(1));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g2 = CsrGraph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn transition_prob_matches_in_degree() {
        let g = diamond();
        assert!((g.transition_prob(1, 3) - 0.5).abs() < 1e-12);
        assert!((g.transition_prob(2, 3) - 0.5).abs() < 1e-12);
        assert_eq!(g.transition_prob(0, 3), 0.0);
        assert!((g.transition_prob(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bytes_counts_all_arrays() {
        let g = diamond();
        // offsets: 2 * 5 * 8 bytes; targets/sources: 2 * 4 * 4 bytes
        assert_eq!(g.memory_bytes(), 2 * 5 * 8 + 2 * 4 * 4);
    }

    #[test]
    fn self_loops_are_kept() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.in_neighbors(0), &[0]);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out_offsets length")]
    fn from_parts_validates_offsets() {
        CsrGraph::from_parts(2, vec![0, 0], vec![], vec![0, 0, 0], vec![]);
    }
}
