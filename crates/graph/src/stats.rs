//! Degree statistics and dataset-table helpers.

use crate::csr::CsrGraph;

/// Which edge direction a statistic describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Out-degree `|Out(v)|`.
    Out,
    /// In-degree `|In(v)|` — the one that drives SimRank walk behaviour.
    In,
}

/// Summary of a degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Mean degree (`m / n`).
    pub mean: f64,
    /// Median degree.
    pub p50: u32,
    /// 90th percentile.
    pub p90: u32,
    /// 99th percentile.
    pub p99: u32,
    /// Number of nodes with degree zero (dangling for [`Direction::In`]).
    pub zeros: u32,
}

/// Computes degree statistics for the chosen direction.
pub fn degree_stats(graph: &CsrGraph, dir: Direction) -> DegreeStats {
    let n = graph.node_count();
    assert!(n > 0, "stats on empty graph");
    let mut degs: Vec<u32> = (0..n)
        .map(|v| match dir {
            Direction::Out => graph.out_degree(v),
            Direction::In => graph.in_degree(v),
        })
        .collect();
    degs.sort_unstable();
    let pct = |p: f64| degs[(((n - 1) as f64) * p).round() as usize];
    DegreeStats {
        min: degs[0],
        max: *degs.last().unwrap(),
        mean: graph.edge_count() as f64 / n as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
        zeros: degs.iter().take_while(|&&d| d == 0).count() as u32,
    }
}

/// Log-2-binned degree histogram: entry `i` counts nodes with degree in
/// `[2^i, 2^{i+1})`; entry for degree 0 is returned separately in `.0`.
pub fn degree_histogram(graph: &CsrGraph, dir: Direction) -> (u32, Vec<u64>) {
    let mut zeros = 0u32;
    let mut bins: Vec<u64> = Vec::new();
    for v in graph.nodes() {
        let d = match dir {
            Direction::Out => graph.out_degree(v),
            Direction::In => graph.in_degree(v),
        };
        if d == 0 {
            zeros += 1;
            continue;
        }
        let bin = (31 - d.leading_zeros()) as usize;
        if bins.len() <= bin {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += 1;
    }
    (zeros, bins)
}

/// A human-readable byte count (`476.8KB`, `11.4GB`) matching the style of
/// the paper's dataset table.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_cycle_are_flat() {
        let g = generators::cycle(10);
        let s = degree_stats(&g, Direction::In);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.p50, 1);
        assert_eq!(s.zeros, 0);
        assert!((s.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_star_count_danglers() {
        let g = generators::star(6);
        let s = degree_stats(&g, Direction::In);
        assert_eq!(s.max, 5);
        assert_eq!(s.zeros, 5);
    }

    #[test]
    fn histogram_bins_powers_of_two() {
        let g = generators::star(9); // hub in-degree 8 -> bin 3
        let (zeros, bins) = degree_histogram(&g, Direction::In);
        assert_eq!(zeros, 8);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[3], 1);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(500), "500B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(11 * 1024 * 1024 * 1024), "11.0GB");
    }
}
