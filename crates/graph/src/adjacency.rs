//! Adjacency abstraction for walk kernels.
//!
//! The reverse walk needs in-neighbours; the forward (mass-carrying) walk
//! needs reverse-chain outflows and weighted out-edge sampling. Both are
//! served either by the resident [`CsrGraph`] (plus its
//! [`ReverseChainIndex`]) or by a routed [`PartitionedView`] over graph
//! shards. These traits let one walk kernel drive both — the **structural**
//! form of the cross-engine guarantee: a sharded engine cannot drift from
//! the local one when they execute the same kernel, only the adjacency
//! source differs.

use crate::csr::{CsrGraph, NodeId};
use crate::partitioned::PartitionedView;
use crate::sampling::ReverseChainIndex;

/// In-link adjacency for the SimRank reverse walk.
pub trait WalkAdjacency: Sync {
    /// Number of nodes.
    fn node_count(&self) -> u32;

    /// In-neighbours of `v`, sorted by node id.
    fn in_neighbors(&self, v: NodeId) -> &[NodeId];
}

impl WalkAdjacency for CsrGraph {
    #[inline]
    fn node_count(&self) -> u32 {
        CsrGraph::node_count(self)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        CsrGraph::in_neighbors(self, v)
    }
}

impl WalkAdjacency for PartitionedView {
    #[inline]
    fn node_count(&self) -> u32 {
        PartitionedView::node_count(self)
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        PartitionedView::in_neighbors(self, v)
    }
}

/// Out-edge sampling for the forward (mass-carrying) walk: total outflow
/// `W_v = Σ_{j∈Out(v)} 1/|In(j)|` and `1/|In(j)|`-proportional sampling.
pub trait ForwardSampler: Sync {
    /// Total reverse-chain outflow of `v` (0 when `v` has no out-edges).
    fn outflow(&self, v: NodeId) -> f64;

    /// Samples an out-neighbour of `v` with probability `∝ 1/|In(j)|`
    /// given uniform `r ∈ [0, 1)`; `None` when `v` has no out-edges.
    fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId>;
}

/// The resident-graph sampler: a [`CsrGraph`] with its
/// [`ReverseChainIndex`].
#[derive(Clone, Copy, Debug)]
pub struct GraphSampler<'a> {
    graph: &'a CsrGraph,
    rci: &'a ReverseChainIndex,
}

impl<'a> GraphSampler<'a> {
    /// Pairs a graph with its reverse-chain index.
    pub fn new(graph: &'a CsrGraph, rci: &'a ReverseChainIndex) -> Self {
        Self { graph, rci }
    }
}

impl ForwardSampler for GraphSampler<'_> {
    #[inline]
    fn outflow(&self, v: NodeId) -> f64 {
        self.rci.outflow(v)
    }

    #[inline]
    fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        self.rci.sample(self.graph, v, r)
    }
}

impl ForwardSampler for PartitionedView {
    #[inline]
    fn outflow(&self, v: NodeId) -> f64 {
        PartitionedView::outflow(self, v)
    }

    #[inline]
    fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        PartitionedView::sample_out(self, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::partition::Partitioner;
    use crate::partitioned::partition_graph;
    use std::sync::Arc;

    #[test]
    fn graph_and_view_agree_through_the_traits() {
        let g = generators::barabasi_albert(200, 3, 4);
        let rci = ReverseChainIndex::build(&g);
        let p = Partitioner::range(g.node_count(), 3);
        let view = PartitionedView::new(Arc::new(partition_graph(&g, &p)), p);
        let sampler = GraphSampler::new(&g, &rci);
        fn adj<G: WalkAdjacency>(g: &G, v: NodeId) -> Vec<NodeId> {
            g.in_neighbors(v).to_vec()
        }
        fn probe<S: ForwardSampler>(s: &S, v: NodeId) -> (f64, Option<NodeId>) {
            (s.outflow(v), s.sample_out(v, 0.37))
        }
        for v in (0..200).step_by(11) {
            assert_eq!(adj(&g, v), adj(&view, v), "in {v}");
            assert_eq!(probe(&sampler, v), probe(&view, v), "fwd {v}");
        }
        assert_eq!(WalkAdjacency::node_count(&g), WalkAdjacency::node_count(&view));
    }
}
