//! Registry of scaled stand-ins for the paper's evaluation datasets.
//!
//! The paper (Table "datasets") evaluates on five real graphs up to clue-web
//! (|V| = 1 B, |E| = 42.6 B, 401.1 GB). Real crawls of that size are neither
//! available nor tractable here, so each dataset is replaced by a seeded
//! synthetic graph whose *relative* size and skew are preserved (DESIGN.md
//! §2/§5): sizes shrink together, degree skew comes from R-MAT, and the
//! broadcast-memory wall (clue-web > per-machine RAM) re-emerges because the
//! largest stand-in exceeds the scaled per-worker budget in
//! `pasco_cluster::ClusterConfig::paper_like`.

use crate::csr::CsrGraph;
use crate::generators::{self, RmatParams};

/// Static description of one dataset stand-in.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Registry key, e.g. `"wiki-vote-sim"`.
    pub name: &'static str,
    /// Name of the real graph it substitutes.
    pub paper_name: &'static str,
    /// |V| of the real graph (for the table's "paper" column).
    pub paper_nodes: u64,
    /// |E| of the real graph.
    pub paper_edges: u64,
    /// Reported size of the real graph in bytes.
    pub paper_bytes: u64,
    /// Generator seed (fixed: the registry is deterministic).
    pub seed: u64,
}

/// All five stand-ins, smallest to largest.
pub const SPECS: [DatasetSpec; 5] = [
    DatasetSpec {
        name: "wiki-vote-sim",
        paper_name: "wiki-vote",
        paper_nodes: 7_100,
        paper_edges: 103_000,
        paper_bytes: 488_243, // 476.8 KB
        seed: 0xB0A710AD,
    },
    DatasetSpec {
        name: "wiki-talk-sim",
        paper_name: "wiki-talk",
        paper_nodes: 2_400_000,
        paper_edges: 5_000_000,
        paper_bytes: 47_815_066, // 45.6 MB
        seed: 0x7A1C,
    },
    DatasetSpec {
        name: "twitter-sim",
        paper_name: "twitter-2010",
        paper_nodes: 42_000_000,
        paper_edges: 1_500_000_000,
        paper_bytes: 12_240_656_794, // 11.4 GB
        seed: 0x7817764,
    },
    DatasetSpec {
        name: "uk-union-sim",
        paper_name: "uk-union",
        paper_nodes: 131_000_000,
        paper_edges: 5_500_000_000,
        paper_bytes: 51_861_722_890, // 48.3 GB
        seed: 0x12B05,
    },
    DatasetSpec {
        name: "clue-web-sim",
        paper_name: "clue-web",
        paper_nodes: 1_000_000_000,
        paper_edges: 42_600_000_000,
        paper_bytes: 430_637_517_373, // 401.1 GB
        seed: 0xC1E3B,
    },
];

impl DatasetSpec {
    /// Generates the stand-in graph. Deterministic: two calls return equal
    /// graphs.
    ///
    /// Stand-in sizing (documented in DESIGN.md §5): `wiki-vote-sim` keeps
    /// the paper's exact node count; larger graphs shrink to a 2-core
    /// budget while keeping the *ordering* and rough ratios of sizes.
    pub fn generate(&self) -> CsrGraph {
        match self.name {
            // 7.1K nodes / ~103K edges, hubby like a voting graph.
            "wiki-vote-sim" => generators::barabasi_albert(7_115, 15, self.seed),
            // 2^16 nodes, sparse and skewed like a talk-page graph.
            "wiki-talk-sim" => generators::rmat(16, 140_000, RmatParams::default(), self.seed),
            // 2^17 nodes, denser, heavy-tailed.
            "twitter-sim" => generators::rmat(17, 1_600_000, RmatParams::default(), self.seed),
            // 2^18 nodes.
            "uk-union-sim" => generators::rmat(18, 3_400_000, RmatParams::default(), self.seed),
            // 2^19 nodes — the one that must exceed the broadcast budget.
            "clue-web-sim" => generators::rmat(19, 7_200_000, RmatParams::default(), self.seed),
            other => panic!("unknown dataset {other}"),
        }
    }
}

/// Looks a stand-in up by name (`"wiki-vote-sim"`, …) or by the paper's
/// name (`"wiki-vote"`, …).
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    SPECS.iter().find(|s| s.name == name || s.paper_name == name)
}

/// Names of all stand-ins in evaluation order.
pub fn names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_either_name() {
        assert!(by_name("wiki-vote-sim").is_some());
        assert!(by_name("twitter-2010").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smallest_standin_matches_paper_scale() {
        let g = by_name("wiki-vote").unwrap().generate();
        assert_eq!(g.node_count(), 7_115);
        // ~103K edges like the paper (BA: 15 per node minus seed clique).
        assert!(g.edge_count() > 95_000 && g.edge_count() < 115_000, "{}", g.edge_count());
    }

    #[test]
    fn sizes_are_strictly_increasing() {
        // Only the two smallest: generating the big ones is a bench concern.
        let sizes: Vec<u64> = SPECS.iter().take(2).map(|s| s.generate().memory_bytes()).collect();
        assert!(sizes[0] < sizes[1]);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = by_name("wiki-talk-sim").unwrap();
        assert_eq!(s.generate(), s.generate());
    }
}
