//! Graph serialization: SNAP-style edge lists and a compact binary format.
//!
//! The binary format (`PASCOGR1`) stores both CSR directions verbatim so a
//! load is four `Vec` reads — the loader the paper's offline phase would use
//! between the preprocessing and query stages.

use crate::csr::{CsrGraph, NodeId};
use crate::error::GraphError;
use crate::GraphBuilder;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PASCOGR1";

/// Preallocation ceiling for length-prefixed vectors (1M elements, 8 MiB
/// of `u64`). A corrupt header must not pick the allocation size: reads
/// are incremental, so a huge declared length just hits EOF instead of
/// reserving the declared amount up front.
const PREALLOC_CAP: usize = 1 << 20;

/// Reads a whitespace-separated edge list (`u v` per line). Lines starting
/// with `#` or `%` are comments; blank lines are skipped.
pub fn read_edge_list(path: impl AsRef<Path>) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list_from(BufReader::new(file))
}

/// [`read_edge_list`] over any reader, for in-memory inputs and tests.
pub fn read_edge_list_from(reader: impl BufRead) -> Result<CsrGraph, GraphError> {
    let mut b = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, idx: usize| -> Result<NodeId, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: idx + 1,
                msg: "expected two node ids".into(),
            })?
            .parse::<NodeId>()
            .map_err(|e| GraphError::Parse { line: idx + 1, msg: e.to_string() })
        };
        let u = parse(it.next(), idx)?;
        let v = parse(it.next(), idx)?;
        if it.next().is_some() {
            return Err(GraphError::Parse {
                line: idx + 1,
                msg: "trailing tokens after edge".into(),
            });
        }
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Writes the graph as a `u v` edge list with a descriptive header comment.
pub fn write_edge_list(graph: &CsrGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# pasco edge list: {} nodes, {} edges", graph.node_count(), graph.edge_count())?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

fn write_u64(w: &mut impl Write, x: u64) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u64_slice(w: &mut impl Write, xs: &[u64]) -> std::io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_u64(w, x)?;
    }
    Ok(())
}

fn write_u32_slice(w: &mut impl Write, xs: &[u32]) -> std::io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    // Chunked conversion keeps the write buffered without a full copy.
    let mut buf = Vec::with_capacity(4 * 8192);
    for chunk in xs.chunks(8192) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

fn read_u64_vec(r: &mut impl Read) -> std::io::Result<Vec<u64>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len.min(PREALLOC_CAP));
    for _ in 0..len {
        out.push(read_u64(r)?);
    }
    Ok(out)
}

fn read_u32_vec(r: &mut impl Read) -> std::io::Result<Vec<u32>> {
    let len = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(len.min(PREALLOC_CAP));
    let mut buf = vec![0u8; 4 * 8192];
    let mut remaining = len;
    while remaining > 0 {
        let take = remaining.min(8192);
        let bytes = &mut buf[..take * 4];
        r.read_exact(bytes)?;
        for c in bytes.chunks_exact(4) {
            out.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        remaining -= take;
    }
    Ok(out)
}

/// Writes the compact binary CSR format.
pub fn write_binary(graph: &CsrGraph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    write_u64(&mut w, graph.node_count() as u64)?;
    write_u64_slice(&mut w, graph.out_offsets())?;
    write_u32_slice(&mut w, graph.out_targets())?;
    write_u64_slice(&mut w, graph.in_offsets())?;
    write_u32_slice(&mut w, graph.in_sources())?;
    w.flush()?;
    Ok(())
}

/// Reads the compact binary CSR format written by [`write_binary`].
pub fn read_binary(path: impl AsRef<Path>) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::BadFormat(format!("bad magic {:?}, expected {:?}", magic, MAGIC)));
    }
    let n = read_u64(&mut r)?;
    if n > u32::MAX as u64 {
        return Err(GraphError::BadFormat(format!("node count {n} exceeds u32")));
    }
    let out_offsets = read_u64_vec(&mut r)?;
    let out_targets = read_u32_vec(&mut r)?;
    let in_offsets = read_u64_vec(&mut r)?;
    let in_sources = read_u32_vec(&mut r)?;
    if out_offsets.len() != n as usize + 1 || in_offsets.len() != n as usize + 1 {
        return Err(GraphError::BadFormat("offset array length mismatch".into()));
    }
    if *out_offsets.last().unwrap() != out_targets.len() as u64
        || *in_offsets.last().unwrap() != in_sources.len() as u64
    {
        return Err(GraphError::BadFormat("edge array length mismatch".into()));
    }
    Ok(CsrGraph::from_parts(n as u32, out_offsets, out_targets, in_offsets, in_sources))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::Cursor;

    #[test]
    fn edge_list_roundtrip() {
        let g = generators::erdos_renyi(50, 200, 4);
        let dir = std::env::temp_dir().join("pasco_io_test_el");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_parses_comments_and_blanks() {
        let text = "# comment\n% also comment\n\n0 1\n1 2\n";
        let g = read_edge_list_from(Cursor::new(text)).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = read_edge_list_from(Cursor::new("0 x\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list_from(Cursor::new("0\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list_from(Cursor::new("0 1 2\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn binary_roundtrip() {
        let g = generators::rmat(10, 5000, generators::RmatParams::default(), 11);
        let dir = std::env::temp_dir().join("pasco_io_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        write_binary(&g, &path).unwrap();
        let g2 = read_binary(&path).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let dir = std::env::temp_dir().join("pasco_io_test_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, b"NOTAPGRF-and-some-junk").unwrap();
        assert!(matches!(read_binary(&path), Err(GraphError::BadFormat(_))));
    }
}
