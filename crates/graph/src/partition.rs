//! Node partitioning schemes used by the RDD execution mode.
//!
//! The paper's RDD implementation stores the graph as a partitioned dataset;
//! a walker whose next node lives on another partition must be shuffled
//! there. The partitioner must therefore be computable by *every* worker in
//! O(1) without global state — these are.

use crate::csr::NodeId;

/// Maps nodes to partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partitioner {
    /// Contiguous ranges of node ids: partition `p` owns
    /// `[p*ceil(n/parts), …)`. Preserves locality of id-clustered graphs.
    Range {
        /// Total node count.
        n: u32,
        /// Number of partitions.
        parts: u32,
    },
    /// Multiplicative hash of the node id. Destroys locality, balances
    /// skewed id distributions.
    Hash {
        /// Number of partitions.
        parts: u32,
    },
}

impl Partitioner {
    /// A range partitioner over `n` nodes and `parts` partitions.
    pub fn range(n: u32, parts: u32) -> Self {
        assert!(parts > 0, "need at least one partition");
        Partitioner::Range { n, parts }
    }

    /// A hash partitioner with `parts` partitions.
    pub fn hash(parts: u32) -> Self {
        assert!(parts > 0, "need at least one partition");
        Partitioner::Hash { parts }
    }

    /// Number of partitions.
    #[inline]
    pub fn parts(&self) -> u32 {
        match *self {
            Partitioner::Range { parts, .. } | Partitioner::Hash { parts } => parts,
        }
    }

    /// Which partition owns node `v`.
    #[inline]
    pub fn owner(&self, v: NodeId) -> u32 {
        match *self {
            Partitioner::Range { n, parts } => {
                let chunk = chunk_size(n, parts);
                (v / chunk).min(parts - 1)
            }
            Partitioner::Hash { parts } => {
                // Fibonacci hashing: good avalanche for sequential ids.
                let h = (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 32) % parts as u64) as u32
            }
        }
    }

    /// For range partitioning, the `[start, end)` node range of partition
    /// `p`; hash partitioning has no contiguous range.
    pub fn range_of(&self, p: u32) -> Option<(NodeId, NodeId)> {
        match *self {
            Partitioner::Range { n, parts } => {
                let chunk = chunk_size(n, parts);
                let start = p * chunk;
                let end = ((p + 1) * chunk).min(n);
                Some((start.min(n), end))
            }
            Partitioner::Hash { .. } => None,
        }
    }
}

#[inline]
fn chunk_size(n: u32, parts: u32) -> u32 {
    n.div_ceil(parts).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_covers_all_nodes_exactly_once() {
        let p = Partitioner::range(10, 3);
        let mut counts = vec![0; 3];
        for v in 0..10 {
            counts[p.owner(v) as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 10);
        // ceil(10/3)=4 -> partitions of size 4, 4, 2
        assert_eq!(counts, vec![4, 4, 2]);
    }

    #[test]
    fn range_of_matches_owner() {
        let p = Partitioner::range(100, 7);
        for part in 0..7 {
            let (s, e) = p.range_of(part).unwrap();
            for v in s..e {
                assert_eq!(p.owner(v), part);
            }
        }
    }

    #[test]
    fn range_handles_more_parts_than_nodes() {
        let p = Partitioner::range(2, 8);
        assert!(p.owner(0) < 8);
        assert!(p.owner(1) < 8);
        let total: u32 = (0..8).map(|part| p.range_of(part).map(|(s, e)| e - s).unwrap_or(0)).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let p = Partitioner::hash(4);
        for v in 0..1000 {
            let o = p.owner(v);
            assert!(o < 4);
            assert_eq!(o, p.owner(v));
        }
    }

    #[test]
    fn hash_balances_sequential_ids() {
        let p = Partitioner::hash(8);
        let mut counts = vec![0u32; 8];
        for v in 0..80_000 {
            counts[p.owner(v) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1500, "imbalanced: {counts:?}");
        }
    }
}
