//! Range-partitioned graph storage for the RDD execution mode.
//!
//! The paper's RDD model stores the graph as a partitioned dataset: each
//! partition owns a contiguous node range and holds only the adjacency of
//! its nodes, so the per-worker footprint is `O(|G| / partitions)`. A walker
//! standing on node `v` can only take its next step on the partition owning
//! `v` — walker state is shuffled between steps, which is exactly the cost
//! the RDD-vs-Broadcasting experiment measures.
//!
//! Each [`GraphPartition`] carries, for its owned nodes:
//! * in-adjacency (for the SimRank reverse walk), and
//! * out-adjacency with reverse-chain cumulative weights (for the MCSS
//!   forward walk; see [`crate::sampling::ReverseChainIndex`]).

use crate::csr::{CsrGraph, NodeId};
use crate::partition::Partitioner;
use std::sync::Arc;

/// One range partition of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphPartition {
    /// First owned node id.
    pub start: NodeId,
    /// One past the last owned node id.
    pub end: NodeId,
    in_offsets: Vec<u64>,
    in_sources: Vec<NodeId>,
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    /// Per-out-edge cumulative reverse-chain weights (local layout).
    out_cum: Vec<f64>,
    /// Per-owned-node total outflow `W_k`.
    out_total: Vec<f64>,
}

impl GraphPartition {
    /// Number of owned nodes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// True when the partition owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True if this partition owns node `v`.
    #[inline]
    pub fn owns(&self, v: NodeId) -> bool {
        (self.start..self.end).contains(&v)
    }

    #[inline]
    fn local(&self, v: NodeId) -> usize {
        debug_assert!(self.owns(v), "node {v} not owned by [{}, {})", self.start, self.end);
        (v - self.start) as usize
    }

    /// In-neighbours of owned node `v` (global ids).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let l = self.local(v);
        &self.in_sources[self.in_offsets[l] as usize..self.in_offsets[l + 1] as usize]
    }

    /// Out-neighbours of owned node `v` (global ids).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let l = self.local(v);
        &self.out_targets[self.out_offsets[l] as usize..self.out_offsets[l + 1] as usize]
    }

    /// Total reverse-chain outflow `W_v` of owned node `v`.
    #[inline]
    pub fn outflow(&self, v: NodeId) -> f64 {
        self.out_total[self.local(v)]
    }

    /// Samples an out-neighbour of owned `v` with probability `∝ 1/|In(j)|`
    /// given uniform `r ∈ [0,1)`; `None` when `v` has no out-edges.
    #[inline]
    pub fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        let l = self.local(v);
        let lo = self.out_offsets[l] as usize;
        let hi = self.out_offsets[l + 1] as usize;
        if lo == hi {
            return None;
        }
        let target = r * self.out_total[l];
        let slice = &self.out_cum[lo..hi];
        let idx = slice.partition_point(|&c| c <= target).min(slice.len() - 1);
        Some(self.out_targets[lo + idx])
    }

    /// Resident bytes of this partition's arrays.
    pub fn memory_bytes(&self) -> u64 {
        (self.in_offsets.len() as u64 + self.out_offsets.len() as u64) * 8
            + (self.in_sources.len() as u64 + self.out_targets.len() as u64) * 4
            + (self.out_cum.len() as u64 + self.out_total.len() as u64) * 8
    }

    /// Reassembles a partition from its raw arrays — the constructor a
    /// wire decoder uses after shipping a partition between processes.
    /// Layout contract (checked): with `count = end - start`, both offset
    /// arrays have `count + 1` entries starting at 0, are monotone, and
    /// end at their adjacency array's length; `out_cum` parallels
    /// `out_targets`; `out_total` has one entry per owned node.
    ///
    /// # Panics
    /// Panics when the arrays violate that contract — callers decoding
    /// untrusted bytes must validate first (the wire codec in
    /// `pasco_simrank::api::worker` does).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        start: NodeId,
        end: NodeId,
        in_offsets: Vec<u64>,
        in_sources: Vec<NodeId>,
        out_offsets: Vec<u64>,
        out_targets: Vec<NodeId>,
        out_cum: Vec<f64>,
        out_total: Vec<f64>,
    ) -> Self {
        let count = (end - start) as usize;
        assert_eq!(in_offsets.len(), count + 1, "in_offsets length");
        assert_eq!(out_offsets.len(), count + 1, "out_offsets length");
        assert_eq!(out_total.len(), count, "out_total length");
        assert_eq!(out_cum.len(), out_targets.len(), "out_cum parallels out_targets");
        for offsets in [&in_offsets, &out_offsets] {
            assert_eq!(offsets[0], 0, "offsets start at 0");
            assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        }
        assert_eq!(*in_offsets.last().unwrap(), in_sources.len() as u64, "in_offsets end");
        assert_eq!(*out_offsets.last().unwrap(), out_targets.len() as u64, "out_offsets end");
        GraphPartition {
            start,
            end,
            in_offsets,
            in_sources,
            out_offsets,
            out_targets,
            out_cum,
            out_total,
        }
    }

    /// The raw arrays backing this partition, in [`GraphPartition::
    /// from_raw`] order — what a wire encoder ships.
    #[allow(clippy::type_complexity)]
    pub fn raw_arrays(&self) -> (&[u64], &[NodeId], &[u64], &[NodeId], &[f64], &[f64]) {
        (
            &self.in_offsets,
            &self.in_sources,
            &self.out_offsets,
            &self.out_targets,
            &self.out_cum,
            &self.out_total,
        )
    }
}

/// Splits `graph` into the range partitions described by `partitioner`.
///
/// # Panics
/// Panics if `partitioner` is not a range partitioner over the graph's node
/// count (hash partitioning would shred adjacency locality).
pub fn partition_graph(graph: &CsrGraph, partitioner: &Partitioner) -> Vec<GraphPartition> {
    let parts = partitioner.parts();
    (0..parts)
        .map(|p| {
            // The documented contract above: panicking on a non-range
            // partitioner is deliberate (hash partitioning would shred
            // adjacency locality), and `p < parts` by the loop bound.
            let (start, end) =
                // pasco-lint: allow(panic-reachable-in-serving)
                partitioner.range_of(p).expect("partition_graph requires a range partitioner");
            let count = (end - start) as usize;
            let mut in_offsets = Vec::with_capacity(count + 1);
            let mut in_sources = Vec::new();
            let mut out_offsets = Vec::with_capacity(count + 1);
            let mut out_targets = Vec::new();
            let mut out_cum = Vec::new();
            let mut out_total = Vec::with_capacity(count);
            in_offsets.push(0);
            out_offsets.push(0);
            for v in start..end {
                in_sources.extend_from_slice(graph.in_neighbors(v));
                in_offsets.push(in_sources.len() as u64);
                let mut acc = 0.0;
                for &j in graph.out_neighbors(v) {
                    acc += 1.0 / graph.in_degree(j) as f64;
                    out_targets.push(j);
                    out_cum.push(acc);
                }
                out_offsets.push(out_targets.len() as u64);
                out_total.push(acc);
            }
            GraphPartition {
                start,
                end,
                in_offsets,
                in_sources,
                out_offsets,
                out_targets,
                out_cum,
                out_total,
            }
        })
        .collect()
}

/// A whole-graph adjacency view assembled from range partitions: every
/// lookup routes to the partition owning the node, so holders of one
/// partition can follow walks that wander across partition boundaries
/// without materialising the full graph twice. On one box the "route" is a
/// slice index; on NUMA or RPC substrates it becomes the remote access the
/// sharded decomposition is designed to localise.
///
/// Lookups return exactly what [`CsrGraph`] would (the partition tests
/// assert slice-level equality), so walk kernels driven through a view take
/// bit-identical trajectories to walks on the resident graph.
#[derive(Clone, Debug)]
pub struct PartitionedView {
    parts: Arc<Vec<GraphPartition>>,
    partitioner: Partitioner,
}

impl PartitionedView {
    /// A view over `parts` as produced by [`partition_graph`] with
    /// `partitioner`.
    ///
    /// # Panics
    /// Panics when `partitioner` is not a range partitioner or its
    /// partition count disagrees with `parts`.
    pub fn new(parts: Arc<Vec<GraphPartition>>, partitioner: Partitioner) -> Self {
        assert_eq!(
            parts.len(),
            partitioner.parts() as usize,
            "view needs one partition per partitioner slot"
        );
        assert!(partitioner.range_of(0).is_some(), "PartitionedView requires a range partitioner");
        Self { parts, partitioner }
    }

    /// The partition owning node `v`.
    #[inline]
    pub fn part_of(&self, v: NodeId) -> &GraphPartition {
        &self.parts[self.partitioner.owner(v) as usize]
    }

    /// All partitions backing this view, in partition order.
    pub fn partitions(&self) -> &Arc<Vec<GraphPartition>> {
        &self.parts
    }

    /// The partitioner mapping nodes to partitions.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Total node count across all partitions.
    pub fn node_count(&self) -> u32 {
        self.parts.last().map(|gp| gp.end).unwrap_or(0)
    }

    /// In-neighbours of `v` (routes to the owning partition).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.part_of(v).in_neighbors(v)
    }

    /// Out-neighbours of `v` (routes to the owning partition).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.part_of(v).out_neighbors(v)
    }

    /// Total reverse-chain outflow `W_v` of `v`.
    #[inline]
    pub fn outflow(&self, v: NodeId) -> f64 {
        self.part_of(v).outflow(v)
    }

    /// Samples an out-neighbour of `v` with probability `∝ 1/|In(j)|`;
    /// `None` when `v` has no out-edges.
    #[inline]
    pub fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        self.part_of(v).sample_out(v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::sampling::ReverseChainIndex;

    #[test]
    fn partitions_cover_graph_exactly() {
        let g = generators::barabasi_albert(500, 4, 3);
        let p = Partitioner::range(500, 7);
        let parts = partition_graph(&g, &p);
        assert_eq!(parts.len(), 7);
        let total: u32 = parts.iter().map(|gp| gp.len()).sum();
        assert_eq!(total, 500);
        // Adjacency matches the full graph for every node.
        for gp in &parts {
            for v in gp.start..gp.end {
                assert_eq!(gp.in_neighbors(v), g.in_neighbors(v));
                assert_eq!(gp.out_neighbors(v), g.out_neighbors(v));
            }
        }
    }

    #[test]
    fn partition_sampling_matches_global_index() {
        let g = generators::rmat(9, 3000, generators::RmatParams::default(), 4);
        let p = Partitioner::range(g.node_count(), 4);
        let parts = partition_graph(&g, &p);
        let rci = ReverseChainIndex::build(&g);
        for gp in &parts {
            for v in gp.start..gp.end {
                assert!((gp.outflow(v) - rci.outflow(v)).abs() < 1e-12, "node {v}");
                for &r in &[0.0, 0.3, 0.77, 0.999] {
                    assert_eq!(gp.sample_out(v, r), rci.sample(&g, v, r), "node {v} r {r}");
                }
            }
        }
    }

    #[test]
    fn view_routes_to_the_full_graph_adjacency() {
        let g = generators::rmat(9, 4_000, generators::RmatParams::default(), 8);
        let p = Partitioner::range(g.node_count(), 5);
        let view = PartitionedView::new(Arc::new(partition_graph(&g, &p)), p);
        let rci = ReverseChainIndex::build(&g);
        assert_eq!(view.node_count(), g.node_count());
        for v in (0..g.node_count()).step_by(17) {
            assert_eq!(view.in_neighbors(v), g.in_neighbors(v), "in {v}");
            assert_eq!(view.out_neighbors(v), g.out_neighbors(v), "out {v}");
            assert!((view.outflow(v) - rci.outflow(v)).abs() < 1e-12, "outflow {v}");
            for &r in &[0.0, 0.42, 0.999] {
                assert_eq!(view.sample_out(v, r), rci.sample(&g, v, r), "sample {v} r {r}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "range partitioner")]
    fn view_rejects_hash_partitioners() {
        let g = generators::cycle(9);
        let parts = Arc::new(partition_graph(&g, &Partitioner::range(9, 3)));
        let _ = PartitionedView::new(parts, Partitioner::hash(3));
    }

    #[test]
    fn memory_sums_close_to_full_graph() {
        let g = generators::barabasi_albert(300, 4, 1);
        let p = Partitioner::range(300, 5);
        let parts = partition_graph(&g, &p);
        let part_bytes: u64 = parts.iter().map(|gp| gp.memory_bytes()).sum();
        // Partitioned storage duplicates offsets and adds weights, but each
        // partition alone must be much smaller than the whole.
        for gp in &parts {
            assert!(gp.memory_bytes() < part_bytes / 2);
        }
    }
}
