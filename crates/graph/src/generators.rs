//! Synthetic graph generators.
//!
//! The paper evaluates on five real web/social graphs; this reproduction
//! substitutes seeded synthetic models with matched size and skew (see
//! `DESIGN.md` §2 and [`crate::datasets`]). All generators are deterministic
//! in their `seed`.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
// Generators use BTreeSet (never HashSet) for edge dedup and endpoint
// picks: ordered collections make "deterministic in seed" structural,
// where hasher order once leaked into the endpoints list (PR 1).
use std::collections::BTreeSet;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct directed edges chosen
/// uniformly at random (no self loops).
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n·(n−1)`.
pub fn erdos_renyi(n: u32, m: u64, seed: u64) -> CsrGraph {
    assert!(n >= 2 || m == 0, "need at least two nodes for edges");
    let possible = n as u64 * (n as u64 - 1);
    assert!(m <= possible, "m={m} exceeds possible edge count {possible}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    let mut b = GraphBuilder::with_capacity(n, m as usize);
    b.ensure_nodes(n);
    while (seen.len() as u64) < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && seen.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment with `m_per_node` out-edges per
/// arriving node, directed **new → old** so early nodes accumulate large
/// in-degree — the shape of the paper's wiki-vote graph, where SimRank's
/// in-link walks concentrate on a few hubs.
pub fn barabasi_albert(n: u32, m_per_node: u32, seed: u64) -> CsrGraph {
    assert!(m_per_node >= 1, "m_per_node must be positive");
    assert!(n > m_per_node, "need more nodes than edges per node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, (n as usize) * m_per_node as usize);
    b.ensure_nodes(n);
    // Repeated-endpoint list: node k appears once per incident edge endpoint,
    // so sampling uniformly from it is preferential attachment.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n as usize * m_per_node as usize);
    // Seed clique over the first m_per_node + 1 nodes.
    let seed_n = m_per_node + 1;
    for u in 0..seed_n {
        for v in 0..seed_n {
            if u != v {
                b.add_edge(u, v);
                endpoints.push(u);
                endpoints.push(v);
            }
        }
    }
    for u in seed_n..n {
        let mut chosen: BTreeSet<NodeId> = BTreeSet::new();
        while chosen.len() < m_per_node as usize {
            let v = endpoints[rng.random_range(0..endpoints.len())];
            if v != u {
                chosen.insert(v);
            }
        }
        // The endpoints list feeds later sampling, so the drain order
        // below is part of the seed contract: BTreeSet iterates sorted,
        // byte-identical to the HashSet-plus-sort this replaced (hasher
        // order leaking in here was the PR 1 determinism bug).
        for v in chosen {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    b.build()
}

/// Parameters of the R-MAT recursive quadrant model.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the (0,0) quadrant. The classic skew is `a = 0.57`.
    pub a: f64,
    /// Probability of the (0,1) quadrant.
    pub b: f64,
    /// Probability of the (1,0) quadrant.
    pub c: f64,
    /// Noise added per level to avoid degenerate staircases.
    pub noise: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // Graph500-style parameters: heavy-tailed in/out degrees resembling
        // the twitter-2010 / clue-web crawls used in the paper.
        Self { a: 0.57, b: 0.19, c: 0.19, noise: 0.05 }
    }
}

/// R-MAT / Kronecker generator: `2^scale` nodes, `m` sampled edges
/// (duplicates collapse in CSR, so the final edge count is slightly below
/// `m` — the actual count is reported by [`CsrGraph::edge_count`]).
pub fn rmat(scale: u32, m: u64, params: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..31).contains(&scale), "scale out of range");
    let n: u32 = 1 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m as usize);
    b.ensure_nodes(n);
    let RmatParams { a, b: pb, c, noise } = params;
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for level in 0..scale {
            // Per-level multiplicative noise keeps the degree sequence
            // smooth, as in the Graph500 reference implementation.
            let jitter = 1.0 + noise * (2.0 * rng.random::<f64>() - 1.0);
            let aa = a * jitter;
            let bb = pb * jitter;
            let cc = c * jitter;
            let total = aa + bb + cc + (1.0 - a - pb - c) * jitter;
            let r = rng.random::<f64>() * total;
            let bit = 1u32 << (scale - 1 - level);
            if r < aa {
                // upper-left: no bits set
            } else if r < aa + bb {
                v |= bit;
            } else if r < aa + bb + cc {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Directed Watts–Strogatz small world: each node points at its `k`
/// successors on a ring; each edge is rewired to a random target with
/// probability `beta`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 1 && k < n, "k must be in [1, n)");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, (n * k) as usize);
    b.ensure_nodes(n);
    for u in 0..n {
        for j in 1..=k {
            let v = if rng.random::<f64>() < beta {
                // Rewire anywhere except to self.
                let mut v = rng.random_range(0..n - 1);
                if v >= u {
                    v += 1;
                }
                v
            } else {
                (u + j) % n
            };
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete directed graph on `n` nodes (no self loops). On this graph
/// SimRank has a closed form, used heavily in tests.
pub fn complete(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, (n as usize) * (n as usize - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Directed cycle `0 → 1 → … → n−1 → 0`. Every node has in-degree 1, so
/// reverse walks are deterministic — another analytic test case.
pub fn cycle(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    for u in 0..n {
        b.add_edge(u, (u + 1) % n);
    }
    b.build()
}

/// In-star: every leaf `1..n` points at the hub `0`, so the hub has
/// in-degree `n−1` while every leaf is dangling (in-degree 0) — makes
/// dangling-node handling observable in walk tests.
pub fn star(n: u32) -> CsrGraph {
    assert!(n >= 2);
    let mut b = GraphBuilder::with_capacity(n, n as usize - 1);
    for u in 1..n {
        b.add_edge(u, 0);
    }
    b.build()
}

/// Directed path `0 → 1 → … → n−1`; node 0 is dangling for reverse walks.
pub fn path(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n as usize);
    b.ensure_nodes(n);
    for u in 0..n.saturating_sub(1) {
        b.add_edge(u, u + 1);
    }
    b.build()
}

/// Two dense ER communities of `n/2` nodes bridged by `bridges` random
/// cross edges — a classic recommender-style scenario where within-community
/// SimRank should dominate across-community SimRank.
pub fn two_communities(n: u32, intra_m: u64, bridges: u64, seed: u64) -> CsrGraph {
    assert!(n >= 4, "need at least 4 nodes");
    let half = n / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, (2 * intra_m + bridges) as usize);
    b.ensure_nodes(n);
    let mut seen = BTreeSet::new();
    let add_unique = |b: &mut GraphBuilder,
                      rng: &mut StdRng,
                      seen: &mut BTreeSet<(u32, u32)>,
                      lo: u32,
                      hi: u32,
                      lo2: u32,
                      hi2: u32,
                      count: u64| {
        let mut added = 0;
        while added < count {
            let u = rng.random_range(lo..hi);
            let v = rng.random_range(lo2..hi2);
            if u != v && seen.insert((u, v)) {
                b.add_edge(u, v);
                added += 1;
            }
        }
    };
    add_unique(&mut b, &mut rng, &mut seen, 0, half, 0, half, intra_m);
    add_unique(&mut b, &mut rng, &mut seen, half, n, half, n, intra_m);
    add_unique(&mut b, &mut rng, &mut seen, 0, half, half, n, bridges / 2);
    add_unique(&mut b, &mut rng, &mut seen, half, n, 0, half, bridges - bridges / 2);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_exact_edge_count_and_determinism() {
        let g1 = erdos_renyi(100, 500, 9);
        let g2 = erdos_renyi(100, 500, 9);
        assert_eq!(g1.edge_count(), 500);
        assert_eq!(g1, g2);
        let g3 = erdos_renyi(100, 500, 10);
        assert_ne!(g1, g3);
    }

    #[test]
    fn er_no_self_loops() {
        let g = erdos_renyi(50, 300, 3);
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn ba_degree_skew() {
        let g = barabasi_albert(2000, 4, 1);
        assert_eq!(g.node_count(), 2000);
        // Every non-seed node contributes m_per_node out-edges.
        assert!(g.edge_count() >= 4 * (2000 - 5) as u64);
        // Preferential attachment should give the seed nodes much higher
        // in-degree than the median node.
        let mut in_degs: Vec<u32> = g.nodes().map(|v| g.in_degree(v)).collect();
        in_degs.sort_unstable();
        let median = in_degs[1000];
        let max = *in_degs.last().unwrap();
        assert!(max > 10 * median.max(1), "max={max} median={median}");
    }

    #[test]
    fn rmat_is_deterministic_and_skewed() {
        let g = rmat(12, 40_000, RmatParams::default(), 7);
        assert_eq!(g.node_count(), 4096);
        assert_eq!(g, rmat(12, 40_000, RmatParams::default(), 7));
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = g.edge_count() as f64 / g.node_count() as f64;
        assert!(max_in as f64 > 8.0 * mean_in, "max_in={max_in} mean={mean_in}");
    }

    #[test]
    fn ws_out_degree_constant() {
        let g = watts_strogatz(100, 4, 0.1, 5);
        // Rewiring can collide with an existing edge and collapse; allow a
        // small deficit.
        assert!(g.edge_count() >= 390 && g.edge_count() <= 400);
        assert!(g.nodes().all(|u| g.out_degree(u) <= 4));
    }

    #[test]
    fn toys_have_expected_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 20);
        assert!(g.nodes().all(|v| g.in_degree(v) == 4 && g.out_degree(v) == 4));

        let g = cycle(6);
        assert!(g.nodes().all(|v| g.in_degree(v) == 1 && g.out_degree(v) == 1));

        let g = star(5);
        assert_eq!(g.in_degree(0), 4);
        assert!((1..5).all(|v| g.is_dangling(v)));

        let g = path(4);
        assert!(g.is_dangling(0));
        assert_eq!(g.in_degree(3), 1);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn two_communities_bridge_count() {
        let g = two_communities(100, 400, 10, 2);
        let cross = g.edges().filter(|&(u, v)| (u < 50) != (v < 50)).count();
        assert_eq!(cross, 10);
        assert_eq!(g.edge_count(), 810);
    }
}
