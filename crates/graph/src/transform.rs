//! Graph transformations: reversal, induced subgraphs, component
//! extraction, id compaction.
//!
//! Real crawls arrive messy — gappy id spaces, disconnected debris, edges
//! in whichever orientation the exporter chose. These helpers normalise a
//! graph before indexing; all of them return a fresh [`CsrGraph`] and a
//! mapping back to the original ids where node identity changes.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// Reverses every edge (`u → v` becomes `v → u`). SimRank on the reversed
/// graph swaps the roles of in- and out-neighbourhoods — useful when a
/// dataset's exporter used "links-to" where the analysis wants "cited-by".
pub fn reverse(graph: &CsrGraph) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(graph.node_count(), graph.edge_count() as usize);
    b.ensure_nodes(graph.node_count());
    for (u, v) in graph.edges() {
        b.add_edge(v, u);
    }
    b.build()
}

/// The subgraph induced on `nodes`, with ids compacted to `0..nodes.len()`.
/// Returns the graph and the mapping `new id → old id` (position `i` holds
/// the original id of new node `i`). Duplicate ids in `nodes` are ignored.
pub fn induced_subgraph(graph: &CsrGraph, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut keep: Vec<NodeId> = nodes.to_vec();
    keep.sort_unstable();
    keep.dedup();
    let mut old_to_new = vec![u32::MAX; graph.node_count() as usize];
    for (new, &old) in keep.iter().enumerate() {
        assert!(old < graph.node_count(), "node {old} out of range");
        old_to_new[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::with_capacity(keep.len() as u32, keep.len() * 4);
    b.ensure_nodes(keep.len() as u32);
    for &old_u in &keep {
        let new_u = old_to_new[old_u as usize];
        for &old_v in graph.out_neighbors(old_u) {
            let new_v = old_to_new[old_v as usize];
            if new_v != u32::MAX {
                b.add_edge(new_u, new_v);
            }
        }
    }
    (b.build(), keep)
}

/// Weakly-connected component labels (edges treated as undirected);
/// `labels[v]` is the component id, ids are densely numbered from 0 in
/// order of first discovery.
pub fn weakly_connected_components(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.node_count() as usize;
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    labels
}

/// Extracts the largest weakly-connected component, ids compacted; returns
/// the subgraph and the `new → old` id mapping.
pub fn largest_wcc(graph: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    assert!(graph.node_count() > 0, "empty graph has no components");
    let labels = weakly_connected_components(graph);
    let mut sizes: Vec<u64> = Vec::new();
    for &l in &labels {
        if sizes.len() <= l as usize {
            sizes.resize(l as usize + 1, 0);
        }
        sizes[l as usize] += 1;
    }
    let biggest = sizes.iter().enumerate().max_by_key(|&(_, &s)| s).map(|(l, _)| l as u32).unwrap();
    let keep: Vec<NodeId> =
        (0..graph.node_count()).filter(|&v| labels[v as usize] == biggest).collect();
    induced_subgraph(graph, &keep)
}

/// Drops isolated nodes (no edges in either direction) and compacts ids;
/// returns the graph and the `new → old` mapping.
pub fn drop_isolated(graph: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let keep: Vec<NodeId> =
        graph.nodes().filter(|&v| graph.in_degree(v) + graph.out_degree(v) > 0).collect();
    induced_subgraph(graph, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn reverse_swaps_directions() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = reverse(&g);
        assert_eq!(r.out_neighbors(1), &[0]);
        assert_eq!(r.out_neighbors(2), &[1]);
        assert_eq!(r.in_neighbors(0), &[1]);
        // Double reversal is the identity.
        assert_eq!(reverse(&r), g);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // 0 -> 1 -> 2 -> 3, 0 -> 3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(map, vec![0, 1, 3]);
        // Edges kept: 0->1 and 0->3 (relabelled 0->2); 1->2 and 2->3 cross.
        let edges: Vec<_> = sub.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = generators::cycle(5);
        let (sub, map) = induced_subgraph(&g, &[2, 2, 4, 4]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map, vec![2, 4]);
    }

    #[test]
    fn wcc_labels_two_islands() {
        // islands {0,1} and {2,3,4}; direction must not matter
        let g = CsrGraph::from_edges(5, &[(1, 0), (2, 3), (4, 3)]);
        let labels = weakly_connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn largest_wcc_picks_the_bigger_island() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 2)]);
        let (sub, map) = largest_wcc(&g);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(map, vec![2, 3, 4]);
        assert_eq!(sub.edge_count(), 3);
    }

    #[test]
    fn drop_isolated_removes_only_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 2);
        b.ensure_nodes(5); // nodes 1, 3, 4 isolated
        let g = b.build();
        let (sub, map) = drop_isolated(&g);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map, vec![0, 2]);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn wcc_of_connected_generator_is_single() {
        let g = generators::barabasi_albert(200, 3, 4);
        let labels = weakly_connected_components(&g);
        assert!(labels.iter().all(|&l| l == 0), "BA graphs are connected");
    }
}
