//! Weighted out-edge sampling for the reverse-chain ("forward") walk.
//!
//! MCSS needs to apply `(Pᵀ)ᵗ` to a sparse vector by simulation. `Pᵀ` is
//! **row**-stochastic, but propagating a *measure* forward through `P`
//! means: mass at node `k` flows to each out-neighbour `j` with weight
//! `1/|In(j)|`, and the total outflow `W_k = Σ_{j∈Out(k)} 1/|In(j)|` is not 1.
//! A mass-carrying walker therefore samples `j ∝ 1/|In(j)|` and multiplies
//! its mass by `W_k`. This module precomputes per-node prefix sums of those
//! weights so each sample is one binary search — the `log d` in the paper's
//! `O(T²R′ log d)` MCSS complexity.

use crate::csr::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Per-node alias structure for sampling out-neighbours with probability
/// proportional to `1/|In(target)|`.
#[derive(Clone, Debug)]
pub struct ReverseChainIndex {
    /// Prefix sums of out-edge weights, aligned with the graph's
    /// `out_targets` array: `cum[e]` is the cumulative weight of out-edges
    /// up to and including `e` *within its node's range*.
    cum: Vec<f64>,
    /// Total outflow `W_k` per node.
    total: Vec<f64>,
}

impl ReverseChainIndex {
    /// Builds the index in parallel over nodes; `O(m)` time and space.
    ///
    /// Each node owns the disjoint slice `cum[out_offsets[k]..out_offsets[k+1]]`,
    /// so the fill parallelises by pairing per-node chunks of `cum` with node
    /// ids via an uneven-chunk iterator derived from the offsets.
    pub fn build(graph: &CsrGraph) -> Self {
        let n = graph.node_count() as usize;
        let mut cum = vec![0.0f64; graph.edge_count() as usize];
        let mut total = vec![0.0f64; n];
        let offsets = graph.out_offsets();

        // Carve `cum` into one mutable chunk per node. The chunks are
        // disjoint by construction of CSR offsets.
        let mut chunks: Vec<&mut [f64]> = Vec::with_capacity(n);
        {
            let mut rest: &mut [f64] = &mut cum;
            for k in 0..n {
                let len = (offsets[k + 1] - offsets[k]) as usize;
                let (head, tail) = rest.split_at_mut(len);
                chunks.push(head);
                rest = tail;
            }
        }
        chunks.par_iter_mut().zip(total.par_iter_mut()).enumerate().for_each(|(k, (chunk, tk))| {
            let mut acc = 0.0;
            for (slot, &j) in chunk.iter_mut().zip(graph.out_neighbors(k as NodeId)) {
                let d = graph.in_degree(j);
                debug_assert!(d > 0, "out-edge target must have an in-edge");
                acc += 1.0 / d as f64;
                *slot = acc;
            }
            *tk = acc;
        });
        drop(chunks);
        Self { cum, total }
    }

    /// Total outflow `W_k = Σ_{j∈Out(k)} 1/|In(j)|` for node `k`.
    #[inline]
    pub fn outflow(&self, k: NodeId) -> f64 {
        self.total[k as usize]
    }

    /// Samples an out-neighbour of `k` with probability `∝ 1/|In(j)|`,
    /// given a uniform random `r ∈ [0, 1)`. Returns `None` when `k` has no
    /// out-edges (the walker's mass is dropped, matching the truncated
    /// series: paths that leave the graph contribute nothing).
    #[inline]
    pub fn sample(&self, graph: &CsrGraph, k: NodeId, r: f64) -> Option<NodeId> {
        let lo = graph.out_offsets()[k as usize] as usize;
        let hi = graph.out_offsets()[k as usize + 1] as usize;
        if lo == hi {
            return None;
        }
        let target = r * self.total[k as usize];
        let slice = &self.cum[lo..hi];
        // partition_point returns the first index with cum > target.
        let idx = slice.partition_point(|&c| c <= target).min(slice.len() - 1);
        Some(graph.out_targets()[lo + idx])
    }

    /// Resident bytes, reported alongside graph memory by the dataset table.
    pub fn memory_bytes(&self) -> u64 {
        (self.cum.len() as u64 + self.total.len() as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn outflow_matches_definition() {
        // diamond: 0->1, 0->2, 1->3, 2->3; in-degrees: 1:1, 2:1, 3:2
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let idx = ReverseChainIndex::build(&g);
        assert!((idx.outflow(0) - 2.0).abs() < 1e-12); // 1/1 + 1/1
        assert!((idx.outflow(1) - 0.5).abs() < 1e-12); // 1/2
        assert!((idx.outflow(3) - 0.0).abs() < 1e-12); // no out-edges
    }

    #[test]
    fn sample_respects_weights() {
        // 0 -> 1 (in-deg 1), 0 -> 2 (in-deg 2 via extra edge 3 -> 2)
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (3, 2)]);
        let idx = ReverseChainIndex::build(&g);
        // weights: 1 -> 1.0, 2 -> 0.5 ⇒ P(1) = 2/3, threshold at r = 2/3.
        assert_eq!(idx.sample(&g, 0, 0.0), Some(1));
        assert_eq!(idx.sample(&g, 0, 0.5), Some(1));
        assert_eq!(idx.sample(&g, 0, 0.7), Some(2));
        assert_eq!(idx.sample(&g, 0, 0.999), Some(2));
    }

    #[test]
    fn sample_none_without_out_edges() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let idx = ReverseChainIndex::build(&g);
        assert_eq!(idx.sample(&g, 1, 0.3), None);
    }

    #[test]
    fn sampling_frequencies_approach_weights() {
        let g = generators::barabasi_albert(300, 3, 5);
        let idx = ReverseChainIndex::build(&g);
        // Pick a node with several out-edges and histogram samples.
        let k = (0..300).find(|&k| g.out_degree(k) >= 3).unwrap();
        let outs = g.out_neighbors(k);
        let mut counts = vec![0u32; outs.len()];
        let trials = 200_000;
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..trials {
            // xorshift for test-local uniforms
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 11) as f64 / (1u64 << 53) as f64;
            let j = idx.sample(&g, k, r).unwrap();
            let pos = outs.iter().position(|&o| o == j).unwrap();
            counts[pos] += 1;
        }
        let w: Vec<f64> = outs.iter().map(|&j| 1.0 / g.in_degree(j) as f64).collect();
        let total: f64 = w.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let expected = w[i] / total;
            let observed = c as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "edge {i}: observed {observed}, expected {expected}"
            );
        }
    }
}
