#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Graph substrate for the PASCO / CloudWalker reproduction.
//!
//! SimRank operates on a directed graph and walks **backwards along
//! in-links**: from node `v`, a walker moves to a uniformly random element of
//! `In(v)`. Everything in this crate is organised around making that walk —
//! and the forward "reverse-chain" walk used by single-source queries — fast:
//!
//! * [`CsrGraph`] stores both out- and in-adjacency in compressed sparse row
//!   form, so a walk step is two array reads.
//! * [`GraphBuilder`] turns edge lists into a [`CsrGraph`] with counting sort.
//! * [`generators`] provides Erdős–Rényi, Barabási–Albert, R-MAT and
//!   Watts–Strogatz models plus analytic toy graphs used in tests.
//! * [`datasets`] is the registry of scaled stand-ins for the five graphs in
//!   the paper's evaluation (wiki-vote … clue-web).
//! * [`sampling::ReverseChainIndex`] precomputes, for every node `k`, prefix
//!   sums of `1/|In(j)|` over its out-edges `k→j`, so the mass-carrying
//!   forward walk of MCSS can sample an out-neighbour `j ∝ 1/|In(j)|` with a
//!   binary search — the `log d` factor in the paper's `O(T²R' log d)` bound.
//! * [`io`] reads/writes SNAP-style edge lists and a compact binary format.
//! * [`partition`] and [`stats`] support the distributed runtime and the
//!   dataset tables.

pub mod adjacency;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod error;
pub mod generators;
pub mod io;
pub mod partition;
pub mod partitioned;
pub mod sampling;
pub mod stats;
pub mod transform;

pub use adjacency::{ForwardSampler, GraphSampler, WalkAdjacency};
pub use builder::GraphBuilder;
pub use csr::{CsrGraph, NodeId};
pub use error::GraphError;
pub use sampling::ReverseChainIndex;
