//! Error type shared by the graph loaders.

use std::fmt;

/// Errors produced while loading or validating graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// A binary graph file had a bad magic number or inconsistent lengths.
    BadFormat(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            GraphError::BadFormat(msg) => write!(f, "bad graph file: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse { line: 3, msg: "bad token".into() };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = GraphError::BadFormat("magic".into());
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn io_error_chains_source() {
        use std::error::Error;
        let e: GraphError = std::io::Error::new(std::io::ErrorKind::NotFound, "x").into();
        assert!(e.source().is_some());
    }
}
