//! Edge-list accumulator that assembles a [`CsrGraph`] with counting sort.

use crate::csr::{CsrGraph, NodeId};

/// Collects directed edges and builds a [`CsrGraph`].
///
/// Duplicate edges are collapsed during [`GraphBuilder::build`]; the node
/// count grows automatically to cover every endpoint unless fixed up-front
/// with [`GraphBuilder::with_capacity`] (it still grows if an endpoint
/// exceeds the given count).
///
/// ```
/// use pasco_graph::GraphBuilder;
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, 2);
/// b.add_edge(2, 1);
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    n: u32,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder expecting `n` nodes and roughly `m` edges.
    pub fn with_capacity(n: u32, m: usize) -> Self {
        Self { edges: Vec::with_capacity(m), n }
    }

    /// Records the directed edge `u → v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.n = self.n.max(u + 1).max(v + 1);
        self.edges.push((u, v));
    }

    /// Ensures the graph has at least `n` nodes even if the trailing ones
    /// have no edges (isolated nodes are legal and show up in the datasets).
    pub fn ensure_nodes(&mut self, n: u32) {
        self.n = self.n.max(n);
    }

    /// Number of edges recorded so far (before deduplication).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph: counting-sorts edges into out-adjacency,
    /// deduplicates, then derives in-adjacency by a second counting sort.
    pub fn build(mut self) -> CsrGraph {
        let n = self.n as usize;

        // Sort by (src, dst) and collapse duplicates. An unstable sort of the
        // tuple vector is O(m log m) with excellent constants and leaves each
        // adjacency list sorted, which `CsrGraph` guarantees.
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        let mut out_offsets = vec![0u64; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        out_targets.extend(self.edges.iter().map(|&(_, v)| v));

        // In-adjacency via counting sort on destination.
        let mut in_offsets = vec![0u64; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u64> = in_offsets[..n].to_vec();
        let mut in_sources = vec![0 as NodeId; m];
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            in_sources[*c as usize] = u;
            *c += 1;
        }
        // Sources arrive in (u, v) order, so each in-list is already sorted
        // by u; assert in debug builds.
        debug_assert!((0..n).all(|v| {
            let lo = in_offsets[v] as usize;
            let hi = in_offsets[v + 1] as usize;
            in_sources[lo..hi].windows(2).all(|w| w[0] <= w[1])
        }));

        CsrGraph::from_parts(self.n, out_offsets, out_targets, in_offsets, in_sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn isolated_nodes_via_ensure() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(5);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(4), 0);
    }

    #[test]
    fn adjacency_sorted_and_deduped() {
        let mut b = GraphBuilder::new();
        for &(u, v) in &[(2, 0), (0, 2), (0, 1), (0, 2), (2, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[0, 1]);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(2), &[0]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn in_out_edge_counts_agree() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        let g = b.build();
        let total_out: u64 = g.nodes().map(|v| g.out_degree(v) as u64).sum();
        let total_in: u64 = g.nodes().map(|v| g.in_degree(v) as u64).sum();
        assert_eq!(total_out, total_in);
        assert_eq!(total_out, g.edge_count());
    }
}
