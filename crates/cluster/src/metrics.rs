//! Stage and shuffle accounting.
//!
//! Real wall time on the host machine is recorded for every stage, plus a
//! *simulated makespan* for the configured virtual cluster: tasks are
//! assigned round-robin to workers and each worker's busy time divides by
//! its core count. The estimate deliberately ignores stragglers beyond task
//! granularity — the same fidelity trade-off the paper's own wall-clock
//! tables make — but lets a 2-core host report how a 160-core cluster would
//! scale (experiment E7).

use crate::config::ClusterConfig;
use std::time::Duration;

/// Metrics for one executed stage.
#[derive(Clone, Debug)]
pub struct StageMetrics {
    /// Caller-supplied stage label, e.g. `"index/walks"`.
    pub label: String,
    /// Number of tasks (= partitions).
    pub tasks: usize,
    /// Real elapsed wall time of the whole stage on the host.
    pub wall: Duration,
    /// Sum of per-task busy times.
    pub busy: Duration,
    /// The longest single task — a lower bound on any schedule's makespan.
    pub max_task: Duration,
    /// Estimated makespan on the virtual cluster.
    pub sim_makespan: Duration,
}

/// Metrics for one shuffle.
#[derive(Clone, Debug)]
pub struct ShuffleMetrics {
    /// Caller-supplied label.
    pub label: String,
    /// Total serialised bytes moved between partitions.
    pub bytes: u64,
    /// Records moved.
    pub records: u64,
    /// Messages (source partition → destination partition buffers).
    pub messages: u64,
    /// Estimated network time on the virtual cluster.
    pub est_network: Duration,
}

/// Estimates the makespan of `task_times` on the virtual cluster:
/// round-robin assignment to workers, each worker's load divided by its
/// cores (tasks are internally sequential; cores pipeline different tasks).
pub fn simulate_makespan(task_times: &[Duration], cfg: &ClusterConfig) -> Duration {
    if task_times.is_empty() {
        return Duration::ZERO;
    }
    let mut per_worker = vec![Duration::ZERO; cfg.workers];
    for (i, &t) in task_times.iter().enumerate() {
        per_worker[i % cfg.workers] += t;
    }
    let max_worker = per_worker.into_iter().max().unwrap_or(Duration::ZERO);
    let div = max_worker.div_f64(cfg.cores_per_worker as f64);
    // A schedule can never beat the longest single task.
    let longest = task_times.iter().copied().max().unwrap_or(Duration::ZERO);
    div.max(longest)
}

/// Estimates time on the wire for a shuffle of `bytes` total across the
/// virtual cluster: every worker transmits its share in parallel, plus a
/// per-message latency charge.
pub fn simulate_network(bytes: u64, messages: u64, cfg: &ClusterConfig) -> Duration {
    let xfer = bytes as f64 / (cfg.net_bytes_per_sec as f64 * cfg.workers as f64);
    let lat = (messages as f64 / cfg.workers as f64) * cfg.net_latency_us as f64 * 1e-6;
    Duration::from_secs_f64(xfer + lat)
}

/// Append-only log of everything the cluster executed.
#[derive(Clone, Debug, Default)]
pub struct MetricsLog {
    /// Stages in execution order.
    pub stages: Vec<StageMetrics>,
    /// Shuffles in execution order.
    pub shuffles: Vec<ShuffleMetrics>,
}

/// Aggregated view of a [`MetricsLog`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ClusterReport {
    /// Number of stages executed.
    pub stages: usize,
    /// Real wall time across stages.
    pub total_wall: Duration,
    /// Total task busy time.
    pub total_busy: Duration,
    /// Estimated virtual-cluster compute makespan.
    pub total_sim: Duration,
    /// Number of shuffles.
    pub shuffles: usize,
    /// Total bytes shuffled.
    pub shuffle_bytes: u64,
    /// Total records shuffled.
    pub shuffle_records: u64,
    /// Estimated virtual-cluster network time.
    pub est_network: Duration,
}

impl MetricsLog {
    /// Aggregates the log.
    pub fn report(&self) -> ClusterReport {
        let mut r = ClusterReport {
            stages: self.stages.len(),
            shuffles: self.shuffles.len(),
            ..Default::default()
        };
        for s in &self.stages {
            r.total_wall += s.wall;
            r.total_busy += s.busy;
            r.total_sim += s.sim_makespan;
        }
        for s in &self.shuffles {
            r.shuffle_bytes += s.bytes;
            r.shuffle_records += s.records;
            r.est_network += s.est_network;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn makespan_divides_across_workers_and_cores() {
        let cfg = ClusterConfig { workers: 2, cores_per_worker: 2, ..ClusterConfig::local(2) };
        // 4 equal tasks of 100ms → each worker gets 200ms over 2 cores → 100ms,
        // floor at longest task (100ms).
        let m = simulate_makespan(&[ms(100); 4], &cfg);
        assert_eq!(m, ms(100));
    }

    #[test]
    fn makespan_never_beats_longest_task() {
        let cfg = ClusterConfig { workers: 8, cores_per_worker: 8, ..ClusterConfig::local(8) };
        let m = simulate_makespan(&[ms(500), ms(1), ms(1)], &cfg);
        assert_eq!(m, ms(500));
    }

    #[test]
    fn empty_stage_has_zero_makespan() {
        let cfg = ClusterConfig::local(3);
        assert_eq!(simulate_makespan(&[], &cfg), Duration::ZERO);
    }

    #[test]
    fn network_estimate_scales_with_bytes() {
        let cfg = ClusterConfig::local(2); // 1 GB/s per worker, 100 us latency
        let t = simulate_network(2_000_000_000, 0, &cfg);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        let t = simulate_network(0, 20, &cfg);
        assert!((t.as_secs_f64() - 10.0 * 100e-6).abs() < 1e-9);
    }

    #[test]
    fn report_aggregates() {
        let mut log = MetricsLog::default();
        log.stages.push(StageMetrics {
            label: "a".into(),
            tasks: 2,
            wall: ms(10),
            busy: ms(18),
            max_task: ms(9),
            sim_makespan: ms(9),
        });
        log.shuffles.push(ShuffleMetrics {
            label: "s".into(),
            bytes: 100,
            records: 10,
            messages: 4,
            est_network: ms(1),
        });
        let r = log.report();
        assert_eq!(r.stages, 1);
        assert_eq!(r.shuffle_bytes, 100);
        assert_eq!(r.total_wall, ms(10));
        assert_eq!(r.est_network, ms(1));
    }
}
