//! Minimal binary codec for shuffled records.
//!
//! Shuffles must *really* serialise (that is where a large part of Spark's
//! RDD-mode cost lives), so every shuffled record type implements [`Codec`]:
//! fixed-width little-endian encoding into a byte buffer, mirrored decode.
//! The format is internal to a single process — no versioning or endianness
//! negotiation — so decode failures are programming errors and panic.

use bytes::{Buf, BufMut};

/// Fixed-width binary encoding for shuffle payloads.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Decodes one value, advancing `buf`.
    ///
    /// # Panics
    /// Panics if `buf` does not hold a full encoding (internal corruption).
    fn decode(buf: &mut impl Buf) -> Self;

    /// Encoded size in bytes.
    fn encoded_len(&self) -> usize;
}

macro_rules! impl_codec_primitive {
    ($ty:ty, $put:ident, $get:ident, $len:expr) => {
        impl Codec for $ty {
            #[inline]
            fn encode(&self, buf: &mut impl BufMut) {
                buf.$put(*self);
            }
            #[inline]
            fn decode(buf: &mut impl Buf) -> Self {
                buf.$get()
            }
            #[inline]
            fn encoded_len(&self) -> usize {
                $len
            }
        }
    };
}

impl_codec_primitive!(u32, put_u32_le, get_u32_le, 4);
impl_codec_primitive!(u64, put_u64_le, get_u64_le, 8);
impl_codec_primitive!(i64, put_i64_le, get_i64_le, 8);
impl_codec_primitive!(f64, put_f64_le, get_f64_le, 8);

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Self {
        let a = A::decode(buf);
        let b = B::decode(buf);
        (a, b)
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len()
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Self {
        let a = A::decode(buf);
        let b = B::decode(buf);
        let c = C::decode(buf);
        (a, b, c)
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len()
    }
}

impl<A: Codec, B: Codec, C: Codec, D: Codec> Codec for (A, B, C, D) {
    fn encode(&self, buf: &mut impl BufMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(buf: &mut impl Buf) -> Self {
        let a = A::decode(buf);
        let b = B::decode(buf);
        let c = C::decode(buf);
        let d = D::decode(buf);
        (a, b, c, d)
    }
    fn encoded_len(&self) -> usize {
        self.0.encoded_len() + self.1.encoded_len() + self.2.encoded_len() + self.3.encoded_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        assert_eq!(buf.len(), value.encoded_len());
        let mut slice = buf.as_slice();
        let back = T::decode(&mut slice);
        assert_eq!(back, value);
        assert!(slice.is_empty(), "decode must consume the encoding");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX / 3);
        roundtrip(-12345i64);
        roundtrip(1.618_033f64);
        roundtrip(f64::MIN_POSITIVE);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((7u32, 9u64));
        roundtrip((1u32, 2u32, 0.5f64));
        roundtrip((1u32, 2u32, 3u64, 0.25f64));
    }

    #[test]
    fn sequences_decode_in_order() {
        let mut buf = Vec::new();
        for i in 0..10u32 {
            (i, i as f64).encode(&mut buf);
        }
        let mut slice = buf.as_slice();
        for i in 0..10u32 {
            let (a, b): (u32, f64) = Codec::decode(&mut slice);
            assert_eq!(a, i);
            assert_eq!(b, i as f64);
        }
    }
}
