#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! A Spark-like cluster runtime, simulated in-process.
//!
//! The paper implements CloudWalker on a 10-machine Spark cluster and
//! contrasts two execution models:
//!
//! * **Broadcasting** — the graph is replicated to every machine; stages are
//!   embarrassingly parallel but the graph must fit in one machine's RAM
//!   (their clue-web graph at 401 GB did not fit in 377 GB, hence `N/A`).
//! * **RDD** — the graph lives partitioned across machines; every walk step
//!   shuffles walker state to the partition owning the next node. Slower,
//!   but the per-machine footprint is `O(|G| / workers)`.
//!
//! This crate reproduces that contrast without a real network: a
//! [`Cluster`] executes *stages* (one task per partition) on a thread pool,
//! [`Broadcast`] enforces the per-worker memory budget, and
//! [`DistVec`] is the RDD analogue whose [`DistVec::shuffle`] really
//! serialises records into per-destination byte buffers and decodes them on
//! the receiving side — so the broadcast-vs-RDD cost gap *emerges* from work
//! performed rather than being modelled. [`metrics`] additionally records
//! per-stage task times, shuffle bytes and an estimated makespan for a
//! configurable virtual cluster (workers × cores, NIC bandwidth), which the
//! scalability experiments report alongside real wall time.

pub mod cluster;
pub mod codec;
pub mod config;
pub mod distvec;
pub mod error;
pub mod metrics;

pub use cluster::{Broadcast, Cluster};
pub use codec::Codec;
pub use config::ClusterConfig;
pub use distvec::DistVec;
pub use error::ClusterError;
pub use metrics::{ClusterReport, MetricsLog, ShuffleMetrics, StageMetrics};
