//! The cluster driver: stage execution and broadcast variables.

use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::metrics::{simulate_makespan, ClusterReport, MetricsLog, StageMetrics};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A read-only value replicated to every simulated worker.
///
/// Cloning is cheap (an [`Arc`] bump), matching Spark's broadcast handles.
/// Construction goes through [`Cluster::broadcast`], which enforces the
/// per-worker memory budget.
#[derive(Debug)]
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Self { value: Arc::clone(&self.value) }
    }
}

impl<T> std::ops::Deref for Broadcast<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

/// Position in the metrics log; used to report the cost of one operation.
#[derive(Clone, Copy, Debug)]
pub struct MetricsMarker {
    stages: usize,
    shuffles: usize,
}

/// The simulated cluster: a thread pool plus metrics accounting.
///
/// Stages run one task per input partition on the pool; real thread count is
/// capped by the host's parallelism while the *simulated* makespan uses the
/// configured `workers × cores` (see [`crate::metrics`]).
pub struct Cluster {
    cfg: ClusterConfig,
    pool: rayon::ThreadPool,
    log: Mutex<MetricsLog>,
}

impl Cluster {
    /// Spins up a cluster. Thread count = `min(virtual cores, host cores)`.
    pub fn new(cfg: ClusterConfig) -> Self {
        let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2);
        let threads = cfg.total_cores().min(host).max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("pasco-worker-{i}"))
            .build()
            // `Cluster::new` runs once at startup, before any request is
            // accepted: a process whose thread pool cannot build cannot
            // serve at all, so aborting here is the contract. Nothing
            // in-flight exists yet for a panic to drop.
            // pasco-lint: allow(panic-reachable-in-serving)
            .expect("failed to build cluster thread pool");
        Self { cfg, pool, log: Mutex::new(MetricsLog::default()) }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Replicates `value` to every worker. `bytes` is the caller-computed
    /// footprint of the value (e.g. `CsrGraph::memory_bytes`); the call
    /// fails when it exceeds the per-worker budget — the exact condition
    /// that produced the paper's Broadcasting-mode `N/A` on clue-web.
    pub fn broadcast<T>(&self, value: T, bytes: u64) -> Result<Broadcast<T>, ClusterError> {
        if bytes > self.cfg.memory_per_worker {
            return Err(ClusterError::BroadcastExceedsMemory {
                needed: bytes,
                budget: self.cfg.memory_per_worker,
            });
        }
        Ok(Broadcast { value: Arc::new(value) })
    }

    /// Runs one stage: task `i` maps `inputs[i]` to an output. Records
    /// per-task busy times and the stage's metrics under `label`.
    pub fn run_stage<In, Out, F>(&self, label: &str, inputs: Vec<In>, f: F) -> Vec<Out>
    where
        In: Send,
        Out: Send,
        F: Fn(usize, In) -> Out + Sync,
    {
        use rayon::prelude::*;
        let wall_start = Instant::now();
        let timed: Vec<(Out, Duration)> = self.pool.install(|| {
            inputs
                .into_par_iter()
                .enumerate()
                .map(|(i, input)| {
                    let t0 = Instant::now();
                    let out = f(i, input);
                    (out, t0.elapsed())
                })
                .collect()
        });
        let wall = wall_start.elapsed();
        let task_times: Vec<Duration> = timed.iter().map(|&(_, d)| d).collect();
        let busy: Duration = task_times.iter().sum();
        let max_task = task_times.iter().copied().max().unwrap_or(Duration::ZERO);
        let sim_makespan = simulate_makespan(&task_times, &self.cfg);
        self.log.lock().stages.push(StageMetrics {
            label: label.to_string(),
            tasks: task_times.len(),
            wall,
            busy,
            max_task,
            sim_makespan,
        });
        timed.into_iter().map(|(out, _)| out).collect()
    }

    /// Appends a shuffle record to the log (used by `DistVec::shuffle`).
    pub(crate) fn log_shuffle(&self, metrics: crate::metrics::ShuffleMetrics) {
        self.log.lock().shuffles.push(metrics);
    }

    /// Snapshot of the full metrics log.
    pub fn metrics(&self) -> MetricsLog {
        self.log.lock().clone()
    }

    /// Aggregated report over the full log.
    pub fn report(&self) -> ClusterReport {
        self.log.lock().report()
    }

    /// Marks the current log position; pair with [`Cluster::report_since`].
    pub fn marker(&self) -> MetricsMarker {
        let log = self.log.lock();
        MetricsMarker { stages: log.stages.len(), shuffles: log.shuffles.len() }
    }

    /// Aggregated report of everything executed after `marker`.
    pub fn report_since(&self, marker: MetricsMarker) -> ClusterReport {
        let log = self.log.lock();
        let partial = MetricsLog {
            stages: log.stages[marker.stages..].to_vec(),
            shuffles: log.shuffles[marker.shuffles..].to_vec(),
        };
        partial.report()
    }

    /// Clears the metrics log.
    pub fn reset_metrics(&self) {
        let mut log = self.log.lock();
        log.stages.clear();
        log.shuffles.clear();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stage_preserves_order_and_logs() {
        let c = Cluster::new(ClusterConfig::local(3));
        let out = c.run_stage("square", vec![1, 2, 3, 4], |_, x: i32| x * x);
        assert_eq!(out, vec![1, 4, 9, 16]);
        let m = c.metrics();
        assert_eq!(m.stages.len(), 1);
        assert_eq!(m.stages[0].tasks, 4);
        assert_eq!(m.stages[0].label, "square");
    }

    #[test]
    fn broadcast_respects_budget() {
        let c = Cluster::new(ClusterConfig::local(2).with_memory_per_worker(100));
        assert!(c.broadcast(vec![0u8; 50], 50).is_ok());
        let err = c.broadcast(vec![0u8; 500], 500).unwrap_err();
        assert_eq!(err, ClusterError::BroadcastExceedsMemory { needed: 500, budget: 100 });
    }

    #[test]
    fn broadcast_clones_share_value() {
        let c = Cluster::new(ClusterConfig::local(2));
        let b = c.broadcast(String::from("graph"), 5).unwrap();
        let b2 = b.clone();
        assert_eq!(&*b, "graph");
        assert_eq!(&*b2, "graph");
    }

    #[test]
    fn marker_scopes_reports() {
        let c = Cluster::new(ClusterConfig::local(2));
        c.run_stage("first", vec![0u32; 2], |_, x| x);
        let mark = c.marker();
        c.run_stage("second", vec![0u32; 3], |_, x| x);
        let since = c.report_since(mark);
        assert_eq!(since.stages, 1);
        assert_eq!(c.report().stages, 2);
    }

    #[test]
    fn reset_clears_log() {
        let c = Cluster::new(ClusterConfig::local(2));
        c.run_stage("s", vec![1], |_, x: i32| x);
        c.reset_metrics();
        assert_eq!(c.report().stages, 0);
    }

    #[test]
    fn tasks_actually_run_in_pool_threads() {
        let c = Cluster::new(ClusterConfig::local(2));
        let names = c.run_stage("names", vec![(); 4], |_, ()| {
            std::thread::current().name().unwrap_or("").to_string()
        });
        assert!(names.iter().all(|n| n.starts_with("pasco-worker-")), "{names:?}");
    }
}
