//! Cluster runtime errors.

use std::fmt;

/// Failures surfaced by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A broadcast value does not fit the per-worker memory budget — the
    /// condition that makes Broadcasting-mode rows `N/A` in the paper's
    /// tables.
    BroadcastExceedsMemory {
        /// Bytes the value needs on every worker.
        needed: u64,
        /// The configured per-worker budget.
        budget: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::BroadcastExceedsMemory { needed, budget } => write!(
                f,
                "broadcast of {needed} bytes exceeds per-worker memory budget of {budget} bytes"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_sizes() {
        let e = ClusterError::BroadcastExceedsMemory { needed: 10, budget: 5 };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('5'));
    }
}
