//! `DistVec` — the RDD analogue: a dataset partitioned across workers.
//!
//! All transformations execute as cluster stages (one task per partition)
//! and are recorded in the metrics log. [`DistVec::shuffle`] performs a real
//! map-side serialisation into per-destination byte buffers followed by a
//! reduce-side decode, so RDD-mode algorithms pay a genuine
//! serialise/transfer/deserialise cost exactly where Spark would.

use crate::cluster::Cluster;
use crate::codec::Codec;
use crate::metrics::{simulate_network, ShuffleMetrics};

/// A dataset split into partitions, each living on one simulated worker.
#[derive(Clone, Debug)]
pub struct DistVec<T> {
    parts: Vec<Vec<T>>,
}

impl<T: Send> DistVec<T> {
    /// Wraps existing partitions.
    pub fn from_partitions(parts: Vec<Vec<T>>) -> Self {
        assert!(!parts.is_empty(), "need at least one partition");
        Self { parts }
    }

    /// Splits `items` into `parts` contiguous, evenly sized partitions.
    pub fn parallelize(items: Vec<T>, parts: usize) -> Self {
        assert!(parts > 0, "need at least one partition");
        let total = items.len();
        let chunk = total.div_ceil(parts).max(1);
        let mut out: Vec<Vec<T>> = Vec::with_capacity(parts);
        let mut iter = items.into_iter();
        for _ in 0..parts {
            let part: Vec<T> = iter.by_ref().take(chunk).collect();
            out.push(part);
        }
        debug_assert_eq!(out.iter().map(Vec::len).sum::<usize>(), total);
        Self { parts: out }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// True when every partition is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// Borrows partition `i`.
    pub fn partition(&self, i: usize) -> &[T] {
        &self.parts[i]
    }

    /// Consumes the dataset, yielding its raw partitions (for custom stages
    /// that need to thread partition data through `Cluster::run_stage`).
    pub fn into_partitions(self) -> Vec<Vec<T>> {
        self.parts
    }

    /// Element-wise transformation.
    pub fn map<U, F>(self, cluster: &Cluster, label: &str, f: F) -> DistVec<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let parts = cluster
            .run_stage(label, self.parts, |_, part| part.into_iter().map(&f).collect::<Vec<U>>());
        DistVec { parts }
    }

    /// Whole-partition transformation; `f` receives the partition index and
    /// the owned partition.
    pub fn map_partitions<U, F>(self, cluster: &Cluster, label: &str, f: F) -> DistVec<U>
    where
        U: Send,
        F: Fn(usize, Vec<T>) -> Vec<U> + Sync,
    {
        let parts = cluster.run_stage(label, self.parts, f);
        DistVec { parts }
    }

    /// Keeps records satisfying `pred`.
    pub fn filter<F>(self, cluster: &Cluster, label: &str, pred: F) -> DistVec<T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.map_partitions(cluster, label, |_, part| {
            part.into_iter().filter(|t| pred(t)).collect()
        })
    }

    /// Per-partition fold followed by a driver-side merge.
    pub fn fold<U, F, M>(&self, cluster: &Cluster, label: &str, init: U, fold: F, merge: M) -> U
    where
        T: Sync,
        U: Send + Sync + Clone,
        F: Fn(U, &T) -> U + Sync,
        M: Fn(U, U) -> U,
    {
        let partials =
            cluster.run_stage(label, self.parts.iter().collect::<Vec<_>>(), |_, part| {
                part.iter().fold(init.clone(), &fold)
            });
        partials.into_iter().fold(init, merge)
    }

    /// Concatenates all partitions on the driver.
    pub fn collect(self) -> Vec<T> {
        self.parts.into_iter().flatten().collect()
    }

    /// Concatenates two datasets partition-wise (Spark's `union`): the
    /// result has the same partition count as `self`, with `other`'s
    /// partitions folded in round-robin.
    pub fn union(mut self, other: DistVec<T>) -> DistVec<T> {
        let n = self.parts.len();
        for (i, part) in other.parts.into_iter().enumerate() {
            self.parts[i % n].extend(part);
        }
        self
    }

    /// Repartitions by destination: `dest(&record)` names the partition
    /// (`0..dest_parts`) each record must move to. Map-side tasks encode
    /// records into per-destination byte buffers; reduce-side tasks decode.
    /// Bytes, records and message counts land in the metrics log under
    /// `label`, together with the virtual cluster's estimated network time.
    pub fn shuffle<F>(
        self,
        cluster: &Cluster,
        label: &str,
        dest_parts: usize,
        dest: F,
    ) -> DistVec<T>
    where
        T: Codec,
        F: Fn(&T) -> usize + Sync,
    {
        assert!(dest_parts > 0, "need at least one destination partition");
        // Map side: encode into per-destination buffers.
        let encoded: Vec<Vec<Vec<u8>>> =
            cluster.run_stage(&format!("{label}/write"), self.parts, |_, part| {
                let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); dest_parts];
                for record in part {
                    let d = dest(&record);
                    debug_assert!(d < dest_parts, "destination {d} out of range");
                    record.encode(&mut bufs[d]);
                }
                bufs
            });

        // "Network": account for every non-empty src→dst message.
        let mut bytes = 0u64;
        let mut messages = 0u64;
        for src in &encoded {
            for buf in src {
                if !buf.is_empty() {
                    bytes += buf.len() as u64;
                    messages += 1;
                }
            }
        }

        // Transpose: destination d receives one buffer from each source.
        let mut inboxes: Vec<Vec<Vec<u8>>> = (0..dest_parts).map(|_| Vec::new()).collect();
        for src_bufs in encoded {
            for (d, buf) in src_bufs.into_iter().enumerate() {
                if !buf.is_empty() {
                    inboxes[d].push(buf);
                }
            }
        }

        // Reduce side: decode.
        let parts: Vec<Vec<T>> = cluster.run_stage(&format!("{label}/read"), inboxes, |_, bufs| {
            let mut out = Vec::new();
            for buf in bufs {
                let mut slice = buf.as_slice();
                while !slice.is_empty() {
                    out.push(T::decode(&mut slice));
                }
            }
            out
        });

        let records = parts.iter().map(Vec::len).sum::<usize>() as u64;
        cluster.log_shuffle(ShuffleMetrics {
            label: label.to_string(),
            bytes,
            records,
            messages,
            est_network: simulate_network(bytes, messages, cluster.config()),
        });
        DistVec { parts }
    }
}

impl<K: Send + Ord + Copy, V: Send> DistVec<(K, V)> {
    /// Groups co-partitioned key-value records by key (Spark's
    /// `groupByKey` *after* a shuffle has already routed keys): each
    /// partition's records are grouped locally, keys sorted ascending.
    /// Call [`DistVec::shuffle`] first if the same key may appear in
    /// several partitions.
    pub fn group_by_key_local(self, cluster: &Cluster, label: &str) -> DistVec<(K, Vec<V>)> {
        self.map_partitions(cluster, label, |_, mut part| {
            part.sort_by_key(|&(k, _)| k);
            let mut out: Vec<(K, Vec<V>)> = Vec::new();
            for (k, v) in part {
                match out.last_mut() {
                    Some((lk, vs)) if *lk == k => vs.push(v),
                    _ => out.push((k, vec![v])),
                }
            }
            out
        })
    }

    /// Transforms values, keeping keys (Spark's `mapValues`).
    pub fn map_values<U, F>(self, cluster: &Cluster, label: &str, f: F) -> DistVec<(K, U)>
    where
        U: Send,
        F: Fn(V) -> U + Sync,
    {
        self.map(cluster, label, |(k, v)| (k, f(v)))
    }

    /// Per-key reduction after local grouping (Spark's `reduceByKey`
    /// without the implicit shuffle — shuffle first for global keys).
    pub fn reduce_by_key_local<F>(self, cluster: &Cluster, label: &str, f: F) -> DistVec<(K, V)>
    where
        F: Fn(V, V) -> V + Sync,
    {
        self.map_partitions(cluster, label, |_, mut part| {
            part.sort_by_key(|&(k, _)| k);
            let mut out: Vec<(K, Option<V>)> = Vec::new();
            for (k, v) in part {
                match out.last_mut() {
                    // Every push below stores `Some`, so the fold always
                    // finds a resident accumulator to take.
                    Some((lk, acc)) if *lk == k => {
                        if let Some(prev) = acc.take() {
                            *acc = Some(f(prev, v));
                        }
                    }
                    _ => out.push((k, Some(v))),
                }
            }
            out.into_iter().filter_map(|(k, v)| v.map(|v| (k, v))).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4))
    }

    #[test]
    fn parallelize_splits_evenly() {
        let dv = DistVec::parallelize((0..10u32).collect(), 3);
        assert_eq!(dv.num_partitions(), 3);
        assert_eq!(dv.len(), 10);
        assert_eq!(dv.partition(0).len(), 4);
        assert_eq!(dv.partition(2).len(), 2);
    }

    #[test]
    fn parallelize_more_parts_than_items() {
        let dv = DistVec::parallelize(vec![1u32, 2], 5);
        assert_eq!(dv.num_partitions(), 5);
        assert_eq!(dv.len(), 2);
    }

    #[test]
    fn map_and_collect_preserve_order() {
        let c = cluster();
        let dv = DistVec::parallelize((0..8u32).collect(), 3);
        let out = dv.map(&c, "x2", |x| x * 2).collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn filter_drops_records() {
        let c = cluster();
        let dv = DistVec::parallelize((0..10u32).collect(), 2);
        let out = dv.filter(&c, "even", |x| x % 2 == 0).collect();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn fold_sums_across_partitions() {
        let c = cluster();
        let dv = DistVec::parallelize((1..=100u64).collect(), 7);
        let sum = dv.fold(&c, "sum", 0u64, |acc, &x| acc + x, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn shuffle_is_a_permutation_and_routes_correctly() {
        let c = cluster();
        let dv = DistVec::parallelize((0..1000u32).collect(), 4);
        let shuffled = dv.shuffle(&c, "by-mod", 5, |&x| (x % 5) as usize);
        assert_eq!(shuffled.num_partitions(), 5);
        assert_eq!(shuffled.len(), 1000);
        for p in 0..5 {
            assert!(shuffled.partition(p).iter().all(|&x| x % 5 == p as u32));
            assert_eq!(shuffled.partition(p).len(), 200);
        }
        // No loss, no duplication.
        let mut all = shuffled.collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_records_metrics() {
        let c = cluster();
        let dv = DistVec::parallelize((0..100u32).collect(), 2);
        let _ = dv.shuffle(&c, "meter", 2, |&x| (x % 2) as usize);
        let m = c.metrics();
        assert_eq!(m.shuffles.len(), 1);
        assert_eq!(m.shuffles[0].records, 100);
        assert_eq!(m.shuffles[0].bytes, 400); // 100 × u32
        assert!(m.shuffles[0].messages <= 4);
        // write + read stages recorded too
        assert_eq!(m.stages.len(), 2);
    }

    #[test]
    fn shuffle_tuples_roundtrip_values() {
        let c = cluster();
        let items: Vec<(u32, f64)> = (0..50).map(|i| (i, i as f64 * 0.5)).collect();
        let dv = DistVec::parallelize(items.clone(), 3);
        let mut back = dv.shuffle(&c, "t", 4, |&(k, _)| (k % 4) as usize).collect();
        back.sort_by_key(|&(k, _)| k);
        assert_eq!(back, items);
    }

    #[test]
    fn union_concatenates_without_loss() {
        let a = DistVec::parallelize((0..10u32).collect(), 3);
        let b = DistVec::parallelize((10..15u32).collect(), 2);
        let u = a.union(b);
        assert_eq!(u.num_partitions(), 3);
        let mut all = u.collect();
        all.sort_unstable();
        assert_eq!(all, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn group_by_key_local_groups_sorted() {
        let c = cluster();
        let items = vec![(2u32, 10u64), (1, 20), (2, 30), (1, 40), (3, 50)];
        let dv = DistVec::parallelize(items, 1);
        let grouped = dv.group_by_key_local(&c, "group").collect();
        assert_eq!(grouped, vec![(1, vec![20, 40]), (2, vec![10, 30]), (3, vec![50])]);
    }

    #[test]
    fn reduce_by_key_after_shuffle_is_global() {
        let c = cluster();
        let items: Vec<(u32, u64)> = (0..100).map(|i| (i % 5, 1u64)).collect();
        let dv = DistVec::parallelize(items, 4)
            .shuffle(&c, "route", 3, |&(k, _)| (k % 3) as usize)
            .reduce_by_key_local(&c, "count", |a, b| a + b);
        let mut counts = dv.collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![(0, 20), (1, 20), (2, 20), (3, 20), (4, 20)]);
    }

    #[test]
    fn map_values_keeps_keys() {
        let c = cluster();
        let dv = DistVec::parallelize(vec![(1u32, 2u64), (3, 4)], 2);
        let out = dv.map_values(&c, "mv", |v| v * 10).collect();
        assert_eq!(out, vec![(1, 20), (3, 40)]);
    }

    #[test]
    fn empty_partitions_shuffle_cleanly() {
        let c = cluster();
        let dv: DistVec<u32> = DistVec::from_partitions(vec![vec![], vec![], vec![]]);
        let out = dv.shuffle(&c, "empty", 2, |&x| x as usize % 2);
        assert_eq!(out.len(), 0);
        assert_eq!(out.num_partitions(), 2);
    }
}
