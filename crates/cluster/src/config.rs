//! Virtual-cluster shape and budgets.

/// Describes the simulated cluster: how many machines, cores and bytes of
/// RAM each one has, and the NIC used for shuffle-time estimates.
///
/// Real execution always uses the host's threads; the worker/core counts
/// drive (a) partitioning defaults, (b) the *estimated* makespan reported by
/// [`crate::metrics`], and (c) the broadcast memory wall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of simulated machines.
    pub workers: usize,
    /// Cores per simulated machine.
    pub cores_per_worker: usize,
    /// RAM per simulated machine, in bytes; broadcasts above this fail.
    pub memory_per_worker: u64,
    /// Simulated NIC bandwidth per machine (bytes/second) for shuffle-time
    /// estimates.
    pub net_bytes_per_sec: u64,
    /// Simulated per-message network latency in microseconds.
    pub net_latency_us: u64,
}

impl ClusterConfig {
    /// The paper's cluster, scaled: 10 workers × 16 cores. The per-worker
    /// memory budget is scaled with the dataset stand-ins (DESIGN.md §5) so
    /// that the largest stand-in exceeds it exactly as clue-web's 401 GB
    /// exceeded the paper's 377 GB/machine.
    pub fn paper_like() -> Self {
        Self {
            workers: 10,
            cores_per_worker: 16,
            // The "377 GB" wall, scaled: the uk-union stand-in (graph +
            // query sampling index ≈ 59 MiB) fits, the clue-web stand-in
            // (≈ 123 MiB) does not — same relationship as in the paper.
            memory_per_worker: 96 * 1024 * 1024,
            net_bytes_per_sec: 1_000_000_000, // ~10 GbE
            net_latency_us: 150,
        }
    }

    /// A small local cluster for tests: `workers` machines, 1 core each,
    /// effectively unlimited memory.
    pub fn local(workers: usize) -> Self {
        Self {
            workers,
            cores_per_worker: 1,
            memory_per_worker: u64::MAX,
            net_bytes_per_sec: 1_000_000_000,
            net_latency_us: 100,
        }
    }

    /// Total simulated cores.
    pub fn total_cores(&self) -> usize {
        self.workers * self.cores_per_worker
    }

    /// Default number of data partitions: a few per core, Spark-style.
    pub fn default_partitions(&self) -> usize {
        (self.total_cores() * 2).max(1)
    }

    /// Overrides the per-worker memory budget.
    pub fn with_memory_per_worker(mut self, bytes: u64) -> Self {
        self.memory_per_worker = bytes;
        self
    }

    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        self.workers = workers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_like_matches_paper_shape() {
        let c = ClusterConfig::paper_like();
        assert_eq!(c.workers, 10);
        assert_eq!(c.cores_per_worker, 16);
        assert_eq!(c.total_cores(), 160);
    }

    #[test]
    fn builders_override_fields() {
        let c = ClusterConfig::local(4).with_memory_per_worker(123).with_workers(2);
        assert_eq!(c.workers, 2);
        assert_eq!(c.memory_per_worker, 123);
        assert!(c.default_partitions() >= 2);
    }
}
