//! Offline shim for `proptest`: randomized property testing without
//! shrinking. Each `proptest!` test runs `cases` iterations with inputs
//! generated from deterministic per-(test, case) seeds, so failures are
//! reproducible run-to-run; `prop_assert*` delegate to the std assert
//! macros (a failing case reports its inputs via the assert message and
//! panics instead of shrinking).

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator keyed by test path and case index.
    pub fn for_case(test: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h ^ (((case as u64) << 32) | 0x5eed) }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($ty:ty) => {
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    };
}

impl_int_range_strategy!(u32);
impl_int_range_strategy!(u64);
impl_int_range_strategy!(usize);
impl_int_range_strategy!(i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// The full-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A `Vec` strategy with element strategy `element` and a length
        /// drawn uniformly from `size`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated integers respect their range.
        #[test]
        fn ranges_respected(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        /// Vec strategies respect element and size constraints.
        #[test]
        fn vecs_respected(v in prop::collection::vec((0u32..10, 0u32..10), 0..50)) {
            prop_assert!(v.len() < 50);
            for &(a, b) in &v {
                prop_assert!(a < 10 && b < 10);
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5).map(|c| TestRng::for_case("t", c).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|c| TestRng::for_case("t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
