//! Offline shim for `parking_lot`: poison-free `Mutex`/`RwLock` wrappers
//! over `std::sync`. A poisoned std lock means a panic already happened on
//! another thread; propagating the panic (via `expect`) matches
//! parking_lot's practical behavior for this workspace.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// A readers-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
