//! Offline shim for the `bytes` crate: the `Buf`/`BufMut` subset used by
//! the shuffle codec (little-endian fixed-width puts and gets).

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0x5a);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        buf.put_i64_le(-7);
        buf.put_f64_le(1.5);
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(r.get_u8(), 0x5a);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -7);
        assert_eq!(r.get_f64_le(), 1.5);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
