//! Offline shim for the `rand` crate.
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt`
//! convenience trait (`random`, `random_range`) used by the graph
//! generators. The generator is xoshiro256** seeded through SplitMix64 —
//! high quality, deterministic, and stable across platforms, which is all
//! the workspace requires (generators promise determinism in their seed,
//! not bit-compatibility with upstream rand).

/// A word-at-a-time random generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The standard generator: xoshiro256**.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, per the xoshiro authors' recommendation.
        let mut x = seed ^ 0x6a09_e667_f3bc_c909;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Generators module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn draw_range(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($ty:ty) => {
        impl UniformInt for $ty {
            fn draw_range(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi - lo) as u64;
                // Lemire-style widening multiply keeps bias negligible for
                // the small spans the generators use.
                let hi128 = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + hi128 as Self
            }
        }
    };
}

impl_uniform_int!(u32);
impl_uniform_int!(u64);
impl_uniform_int!(usize);

/// Convenience sampling methods (mirrors rand 0.9's `Rng`).
pub trait RngExt: RngCore {
    /// A value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform draw from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::draw_range(self, range.start, range.end)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
