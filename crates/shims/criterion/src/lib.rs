//! Offline shim for `criterion`: runs each benchmark a small fixed number
//! of iterations and prints median wall time. No statistics, plots, or
//! baselines — just enough for `cargo bench` to execute the workspace's
//! benchmark suites and report comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 10 }
    }

    /// Benchmarks `f` under `id` (ungrouped).
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration (recorded, not yet reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming only the swept parameter.
    pub fn from_parameter(p: impl Display) -> Self {
        Self(p.to_string())
    }

    /// An id with a function name and parameter.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Work-per-iteration declarations.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `f`, recording one sample per configured iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warmup iteration, then timed samples.
        black_box(f());
        for _ in 0..self.per_sample {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::new(), per_sample: sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    println!("  {label}: median {median:?} (min {min:?}, {} samples)", b.samples.len());
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counts", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 3);
    }
}
