//! Offline shim for the `rayon` crate.
//!
//! Implements the subset of rayon's data-parallel API this workspace uses,
//! backed by `std::thread::scope`. Parallel pipelines are composed lazily
//! (as in rayon) and materialised by the consuming call (`collect`,
//! `for_each`, `reduce`, `sum`), which splits the index space into one
//! contiguous chunk per worker thread and reassembles results **in chunk
//! order** — so `collect` preserves input order and every pipeline is
//! deterministic regardless of thread scheduling.
//!
//! `ThreadPool::install` does not keep persistent workers; it installs the
//! pool's thread count and naming function into a thread-local so that
//! parallel calls made inside the closure spawn workers with the pool's
//! names and width. That is observably equivalent for this workspace's
//! usage (including tests that assert tasks run on named pool threads).

use std::cell::RefCell;
use std::sync::Arc;

pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

// ---------------------------------------------------------------------------
// Thread-pool context
// ---------------------------------------------------------------------------

type Namer = Arc<dyn Fn(usize) -> String + Send + Sync>;

#[derive(Clone)]
struct PoolCtx {
    threads: usize,
    namer: Namer,
    /// Inside `ThreadPool::install` even single-chunk work is spawned onto a
    /// named worker thread (tests observe thread names).
    force_spawn: bool,
}

thread_local! {
    static CURRENT_POOL: RefCell<Option<PoolCtx>> = const { RefCell::new(None) };
}

fn current_ctx() -> PoolCtx {
    CURRENT_POOL.with(|c| c.borrow().clone()).unwrap_or_else(|| PoolCtx {
        threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2),
        namer: Arc::new(|i| format!("pasco-par-{i}")),
        force_spawn: false,
    })
}

/// Error building a thread pool (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    namer: Option<Namer>,
}

impl ThreadPoolBuilder {
    /// A fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Sets the worker-thread naming function.
    pub fn thread_name<F>(mut self, f: F) -> Self
    where
        F: Fn(usize) -> String + Send + Sync + 'static,
    {
        self.namer = Some(Arc::new(f));
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2));
        let namer = self.namer.unwrap_or_else(|| Arc::new(|i| format!("pasco-par-{i}")) as Namer);
        Ok(ThreadPool { ctx: PoolCtx { threads: threads.max(1), namer, force_spawn: true } })
    }
}

/// A scoped thread-pool configuration (workers are spawned per parallel
/// call rather than kept alive, see the module docs).
pub struct ThreadPool {
    ctx: PoolCtx,
}

impl ThreadPool {
    /// Runs `op` with this pool installed as the ambient pool: parallel
    /// iterators inside `op` use this pool's width and thread names.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(self.ctx.clone()));
        let out = op();
        CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.ctx.threads
    }
}

// ---------------------------------------------------------------------------
// Core traits
// ---------------------------------------------------------------------------

/// A splittable, exactly-sized parallel pipeline.
///
/// Unlike rayon this shim only models indexed iterators, which is all the
/// workspace uses; `IndexedParallelIterator` is therefore just an alias
/// trait.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Exact number of elements.
    fn len(&self) -> usize;

    /// True when the pipeline holds no elements.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drains this (usually already-split) piece sequentially.
    fn drain(self, sink: &mut impl FnMut(Self::Item));

    /// Maps each element through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Maps with per-chunk mutable state created by `init`.
    fn map_init<S, R, I, F>(self, init: I, f: F) -> MapInit<Self, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync + Send,
        F: Fn(&mut S, Self::Item) -> R + Sync + Send,
    {
        MapInit { base: self, init: Arc::new(init), f: Arc::new(f) }
    }

    /// Pairs each element with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Zips with another equal-shape pipeline (truncates to the shorter).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Runs `f` on every element.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_chunks(self, &|piece: Self| {
            let mut sink = |item| f(item);
            piece.drain(&mut sink);
        });
    }

    /// Collects into `C` (this shim supports `Vec<_>`), preserving order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Reduces with `op` from per-chunk folds seeded by `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let partials = run_chunks(self, &|piece: Self| {
            let mut acc = identity();
            let mut sink = |item| acc = op(std::mem::replace(&mut acc, identity()), item);
            piece.drain(&mut sink);
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Sums the elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let partials = run_chunks(self, &|piece: Self| {
            let mut items = Vec::new();
            let mut sink = |item| items.push(item);
            piece.drain(&mut sink);
            items.into_iter().sum::<S>()
        });
        partials.into_iter().sum()
    }
}

/// Alias trait: every pipeline in this shim is indexed.
pub trait IndexedParallelIterator: ParallelIterator {}
impl<T: ParallelIterator> IndexedParallelIterator for T {}

/// Splits `iter` into at most `ctx.threads` contiguous chunks, runs `f` on
/// each chunk on its own named thread, and returns the chunk results in
/// order. Small inputs run inline unless a pool is installed.
fn run_chunks<I, R, F>(iter: I, f: &F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let ctx = current_ctx();
    let total = iter.len();
    let threads = ctx.threads.max(1);
    if total == 0 {
        return if ctx.force_spawn { spawn_chunks(vec![iter], &ctx, f) } else { vec![f(iter)] };
    }
    let chunk = total.div_ceil(threads);
    let mut pieces = Vec::with_capacity(threads);
    let mut rest = iter;
    while rest.len() > chunk {
        let (head, tail) = rest.split_at(chunk);
        pieces.push(head);
        rest = tail;
    }
    pieces.push(rest);
    if pieces.len() == 1 && !ctx.force_spawn {
        let piece = pieces.pop().expect("one piece");
        return vec![f(piece)];
    }
    spawn_chunks(pieces, &ctx, f)
}

fn spawn_chunks<I, R, F>(pieces: Vec<I>, ctx: &PoolCtx, f: &F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = pieces
            .into_iter()
            .enumerate()
            .map(|(k, piece)| {
                std::thread::Builder::new()
                    .name((ctx.namer)(k))
                    .spawn_scoped(scope, move || f(piece))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Order-preserving `collect` targets.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from a parallel pipeline.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let chunks = run_chunks(iter, &|piece: I| {
            let mut items = Vec::with_capacity(piece.len());
            let mut sink = |item| items.push(item);
            piece.drain(&mut sink);
            items
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for c in chunks {
            out.extend(c);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Converts a collection into a parallel pipeline.
pub trait IntoParallelIterator {
    /// The pipeline's element type.
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on `&self`.
pub trait IntoParallelRefIterator<'a> {
    /// The pipeline's element type.
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the borrowing pipeline.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `.par_iter_mut()` on `&mut self`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The pipeline's element type.
    type Item: Send;
    /// The pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the mutably borrowing pipeline.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// Parallel range source.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_source {
    ($ty:ty) => {
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = RangeIter<$ty>;
            fn into_par_iter(self) -> RangeIter<$ty> {
                RangeIter { start: self.start, end: self.end.max(self.start) }
            }
        }
        impl ParallelIterator for RangeIter<$ty> {
            type Item = $ty;
            fn len(&self) -> usize {
                (self.end - self.start) as usize
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $ty;
                (RangeIter { start: self.start, end: mid }, RangeIter { start: mid, end: self.end })
            }
            fn drain(self, sink: &mut impl FnMut($ty)) {
                for v in self.start..self.end {
                    sink(v);
                }
            }
        }
    };
}

impl_range_source!(u32);
impl_range_source!(u64);
impl_range_source!(usize);

/// Owned-`Vec` source.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecIter { items: tail })
    }
    fn drain(self, sink: &mut impl FnMut(T)) {
        for item in self.items {
            sink(item);
        }
    }
}

/// Shared-slice source.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }
    fn drain(self, sink: &mut impl FnMut(&'a T)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// Mutable-slice source.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: a }, SliceIterMut { slice: b })
    }
    fn drain(self, sink: &mut impl FnMut(&'a mut T)) {
        for item in self.slice {
            sink(item);
        }
    }
}

/// `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into mutable chunks of `size` (last may be shorter).
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksMut { slice: self, size }
    }
}

/// Mutable chunked source.
pub struct ChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(at);
        (ChunksMut { slice: a, size: self.size }, ChunksMut { slice: b, size: self.size })
    }
    fn drain(self, sink: &mut impl FnMut(&'a mut [T])) {
        for chunk in self.slice.chunks_mut(self.size) {
            sink(chunk);
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct Map<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Map { base: a, f: Arc::clone(&self.f) }, Map { base: b, f: self.f })
    }
    fn drain(self, sink: &mut impl FnMut(R)) {
        let f = self.f;
        self.base.drain(&mut |item| sink(f(item)));
    }
}

/// `map_init` adapter (state is created once per executed chunk).
pub struct MapInit<I, IF, F> {
    base: I,
    init: Arc<IF>,
    f: Arc<F>,
}

impl<I, S, R, IF, F> ParallelIterator for MapInit<I, IF, F>
where
    I: ParallelIterator,
    R: Send,
    IF: Fn() -> S + Sync + Send,
    F: Fn(&mut S, I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            MapInit { base: a, init: Arc::clone(&self.init), f: Arc::clone(&self.f) },
            MapInit { base: b, init: self.init, f: self.f },
        )
    }
    fn drain(self, sink: &mut impl FnMut(R)) {
        let mut state = (self.init)();
        let f = self.f;
        self.base.drain(&mut |item| sink(f(&mut state, item)));
    }
}

/// `enumerate` adapter.
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + index },
        )
    }
    fn drain(self, sink: &mut impl FnMut((usize, I::Item))) {
        let mut i = self.offset;
        self.base.drain(&mut |item| {
            sink((i, item));
            i += 1;
        });
    }
}

/// `zip` adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn drain(self, sink: &mut impl FnMut((A::Item, B::Item))) {
        let mut bs = Vec::with_capacity(self.b.len());
        self.b.drain(&mut |item| bs.push(item));
        let mut bs = bs.into_iter();
        let budget = self.a.len().min(bs.len());
        let mut taken = 0usize;
        self.a.drain(&mut |item| {
            if taken < budget {
                if let Some(b) = bs.next() {
                    sink((item, b));
                    taken += 1;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn zip_enumerate_for_each_mutates() {
        let mut a = vec![0u32; 100];
        let mut b = vec![0u32; 100];
        a.par_iter_mut().zip(b.par_iter_mut()).enumerate().for_each(|(i, (x, y))| {
            *x = i as u32;
            *y = 2 * i as u32;
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u32));
        assert!(b.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn reduce_and_sum() {
        let m = (0u32..1000).into_par_iter().map(|x| x as f64).reduce(|| 0.0, f64::max);
        assert_eq!(m, 999.0);
        let s: u64 = vec![1u64; 500].into_par_iter().sum();
        assert_eq!(s, 500);
    }

    #[test]
    fn map_init_runs_everywhere() {
        let v: Vec<usize> = (0usize..97)
            .into_par_iter()
            .map_init(Vec::new, |buf: &mut Vec<usize>, i| {
                buf.push(i);
                buf.len()
            })
            .collect();
        assert_eq!(v.len(), 97);
    }

    #[test]
    fn install_names_worker_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .thread_name(|i| format!("shim-worker-{i}"))
            .build()
            .unwrap();
        let names: Vec<String> = pool.install(|| {
            (0u32..4)
                .into_par_iter()
                .map(|_| std::thread::current().name().unwrap_or("").to_string())
                .collect()
        });
        assert!(names.iter().all(|n| n.starts_with("shim-worker-")), "{names:?}");
    }
}
