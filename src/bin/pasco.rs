//! `pasco` — command-line interface to the CloudWalker reproduction.
//!
//! ```text
//! pasco generate --model rmat --scale 14 --edges 100000 --seed 7 --out g.bin
//! pasco stats    --graph g.bin
//! pasco index    --graph g.bin --out g.idx [--mode local|sharded|broadcast|rdd]
//!                [--shards N] [--seed N]
//! pasco sp       --graph g.bin --index g.idx --i 3 --j 99
//! pasco ss       --graph g.bin --index g.idx --i 3 [--top 10] [--estimator walk|push]
//! pasco topk     --graph g.bin --index g.idx --i 3 --k 10
//! pasco pairs    --graph g.bin --index g.idx --nodes 1,5,9 [--cache 1024]
//! pasco convert  --in edges.txt --out g.bin      (edge list -> binary, or back)
//! pasco save-store --graph g.bin --index g.idx --out store/ --parts 4
//! pasco sp       --store store/ --i 3 --j 99     (any query cmd; O(1) open)
//! pasco serve    --graph g.bin --index g.idx --addr 127.0.0.1:7878
//!                [--mode local|sharded|broadcast|rdd|distributed] [--cache N]
//!                [--workers N]
//! pasco query    --connect 127.0.0.1:7878 --kind sp --i 3 --j 99
//! pasco query    --connect 127.0.0.1:7878 --kind shutdown   (drain the server)
//! pasco worker   --addr 127.0.0.1:9000    (a SimRank worker process; drain it
//!                with `pasco query --connect 127.0.0.1:9000 --kind shutdown`)
//! ```
//!
//! Query subcommands also accept `--mode`/`--shards`, so a persisted index
//! can be served from any substrate (e.g. `--mode sharded --shards 8`), and
//! `--mode distributed --workers host:port,host:port` runs the build and
//! every query on real worker processes over TCP — bit-identical output.
//!
//! Graphs are read as the binary format when the file starts with the
//! `PASCOGR1` magic, otherwise as a whitespace edge list.
//!
//! Every query subcommand goes through the typed
//! [`QueryService`] front door: the CLI builds a [`QueryRequest`],
//! executes it, and matches the [`QueryResponse`] — bounds checking lives
//! in the API layer ([`pasco::simrank::QueryError`]), not here.

use pasco::cluster::ClusterConfig;
use pasco::graph::stats::{degree_stats, human_bytes, Direction};
use pasco::graph::{io, CsrGraph};
use pasco::server::{PascoClient, PascoServer, ServerConfig};
use pasco::simrank::api::{QueryRequest, QueryResponse, QueryService};
use pasco::simrank::{
    metrics, persist, CloudWalker, ExecMode, QuerySession, SessionConfig, SimRankConfig,
};
use pasco::worker::{PascoWorker, WorkerConfig};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "index" => cmd_index(&flags),
        "save-store" => cmd_save_store(&flags),
        "sp" => cmd_sp(&flags),
        "ss" => cmd_ss(&flags),
        "topk" => cmd_topk(&flags),
        "pairs" => cmd_pairs(&flags),
        "convert" => cmd_convert(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "worker" => cmd_worker(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
pasco — CloudWalker SimRank (PASCO reproduction)

USAGE:
  pasco generate --model <er|ba|rmat|ws> --out <file> [--nodes N] [--scale S]
                 [--edges M] [--seed N]
  pasco stats    --graph <file>
  pasco index    --graph <file> --out <file>
                 [--mode local|sharded|broadcast|rdd|distributed]
                 [--shards N] [--workers host:port,...]
                 [--seed N] [--c F] [--t N] [--l N] [--r N]
  pasco sp       --graph <file> --index <file> --i <node> --j <node>
  pasco ss       --graph <file> --index <file> --i <node> [--top K]
                 [--estimator walk|push]
  pasco topk     --graph <file> --index <file> --i <node> --k <K>   (TSV out)
  pasco pairs    --graph <file> --index <file> --nodes <a,b,c,...> [--cache N]
  pasco convert  --in <file> --out <file>   (.txt <-> .bin by extension)
  pasco save-store --graph <file> --out <dir> [--parts N] [--index <file>]
                 (omit --index to build one first; same flags as index)
  pasco serve    --graph <file> --index <file> --addr <host:port>
                 [--mode local|sharded|broadcast|rdd|distributed] [--shards N]
                 [--cache N] [--cache-ttl-secs S] [--cache-bytes B]
                 [--workers N] [--max-frame BYTES] [--max-conns N]
                 [--io-timeout SECS]
                 (distributed: --workers host:port,... and --pool N for the
                 server's execution pool)
  pasco query    --connect <host:port> --kind <sp|ss|topk|shutdown>
                 [--i N] [--j N] [--k K (topk)] [--top N (ss)]
  pasco worker   --addr <host:port> [--max-frame BYTES]

  Query subcommands (sp/ss/topk/pairs) also accept --mode/--shards to pick
  the serving substrate; results are bit-identical across substrates —
  including over the network: `pasco serve` + `pasco query --connect`
  speak the versioned envelope protocol over TCP.

  A real cluster: start `pasco worker` processes, then run index/sp/ss/
  topk/pairs/serve with `--mode distributed --workers host:port,host:port`.
  The coordinator ships one graph partition per worker and routes every
  query to its owner; answers stay bit-identical to --mode local. Drain a
  worker with `pasco query --connect <worker> --kind shutdown`.

  Out of core: `pasco save-store` writes one mmap-ready shard file per
  partition (diagonal included). Query/serve commands then take
  `--store <dir>` instead of --graph/--index: the store is mapped in
  place, reopen cost is O(1) in edge volume, and answers stay
  bit-identical. With `--mode distributed` each worker maps only its own
  shard of the same directory — no partition bytes cross the wire.
";

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Flags)> {
    let cmd = args.first()?.clone();
    let mut flags = HashMap::new();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let name = flag.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(name.to_string(), value.clone());
    }
    Some((cmd, flags))
}

fn get<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(|s| s.as_str()).ok_or_else(|| format!("missing --{key}"))
}

fn get_num<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("--{key}: cannot parse `{s}`")),
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let head = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if head.starts_with(b"PASCOGR1") {
        io::read_binary(path).map_err(|e| e.to_string())
    } else {
        io::read_edge_list(path).map_err(|e| e.to_string())
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    use pasco::graph::generators as g;
    let model = get(flags, "model")?;
    let out = get(flags, "out")?;
    let seed: u64 = get_num(flags, "seed", 42)?;
    let graph = match model {
        "er" => {
            let n: u32 = get_num(flags, "nodes", 10_000)?;
            let m: u64 = get_num(flags, "edges", (n as u64) * 8)?;
            g::erdos_renyi(n, m, seed)
        }
        "ba" => {
            let n: u32 = get_num(flags, "nodes", 10_000)?;
            let per: u32 = get_num(flags, "edges-per-node", 8)?;
            g::barabasi_albert(n, per, seed)
        }
        "rmat" => {
            let scale: u32 = get_num(flags, "scale", 14)?;
            let m: u64 = get_num(flags, "edges", (1u64 << scale) * 8)?;
            g::rmat(scale, m, g::RmatParams::default(), seed)
        }
        "ws" => {
            let n: u32 = get_num(flags, "nodes", 10_000)?;
            let k: u32 = get_num(flags, "k", 8)?;
            g::watts_strogatz(n, k, 0.1, seed)
        }
        other => return Err(format!("unknown model `{other}` (er|ba|rmat|ws)")),
    };
    io::write_binary(&graph, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {out}: {} nodes, {} edges, {}",
        graph.node_count(),
        graph.edge_count(),
        human_bytes(graph.memory_bytes())
    );
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), String> {
    let graph = load_graph(get(flags, "graph")?)?;
    println!("nodes:  {}", graph.node_count());
    println!("edges:  {}", graph.edge_count());
    println!("memory: {}", human_bytes(graph.memory_bytes()));
    for (label, dir) in [("in", Direction::In), ("out", Direction::Out)] {
        let s = degree_stats(&graph, dir);
        println!(
            "{label}-degree: min {} p50 {} p90 {} p99 {} max {} mean {:.2} zeros {}",
            s.min, s.p50, s.p90, s.p99, s.max, s.mean, s.zeros
        );
    }
    Ok(())
}

fn sim_config(flags: &Flags) -> Result<SimRankConfig, String> {
    let mut cfg = SimRankConfig::default_paper();
    cfg.c = get_num(flags, "c", cfg.c)?;
    cfg.t = get_num(flags, "t", cfg.t)?;
    cfg.l = get_num(flags, "l", cfg.l)?;
    cfg.r = get_num(flags, "r", cfg.r)?;
    cfg.r_query = get_num(flags, "r-query", cfg.r_query)?;
    cfg.seed = get_num(flags, "seed", cfg.seed)?;
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// Parses `--mode` (with `--shards` for the sharded substrate).
fn exec_mode(flags: &Flags) -> Result<ExecMode, String> {
    match flags.get("mode").map(|s| s.as_str()).unwrap_or("local") {
        "local" => Ok(ExecMode::Local),
        "broadcast" => Ok(ExecMode::Broadcast(ClusterConfig::paper_like())),
        "rdd" => Ok(ExecMode::Rdd(ClusterConfig::paper_like())),
        "sharded" => {
            let shards: u32 = get_num(flags, "shards", 4)?;
            if shards == 0 {
                return Err("--shards must be positive".into());
            }
            Ok(ExecMode::Sharded { shards })
        }
        "distributed" => {
            let workers: Vec<String> = get(flags, "workers")
                .map_err(|_| "--mode distributed needs --workers host:port,host:port,...")?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if workers.is_empty() {
                return Err("--workers needs at least one address".into());
            }
            Ok(ExecMode::Distributed { workers })
        }
        other => Err(format!("unknown mode `{other}` (local|sharded|broadcast|rdd|distributed)")),
    }
}

fn cmd_index(flags: &Flags) -> Result<(), String> {
    let graph = Arc::new(load_graph(get(flags, "graph")?)?);
    let out = get(flags, "out")?;
    let cfg = sim_config(flags)?;
    let mode = exec_mode(flags)?;
    let t0 = Instant::now();
    let (cw, stats) = CloudWalker::build_with_stats(graph, cfg, mode).map_err(|e| e.to_string())?;
    persist::save_index(cw.diagonal(), out).map_err(|e| e.to_string())?;
    println!(
        "indexed {} nodes in {:.2?} on the {} engine (strategy {:?}, residual {:.2e}); index -> {out}",
        cw.diagonal().len(),
        t0.elapsed(),
        cw.mode_name(),
        stats.strategy,
        stats.jacobi_residuals.last().copied().unwrap_or(0.0)
    );
    if let Some(per_shard) = cw.shard_footprints() {
        let max = per_shard.iter().copied().max().unwrap_or(0);
        println!(
            "shards: {} ({} total, {} max/shard)",
            per_shard.len(),
            human_bytes(per_shard.iter().sum()),
            human_bytes(max)
        );
    }
    if let Some(stats) = cw.worker_stats() {
        for (w, s) in stats.iter().enumerate() {
            match s {
                Ok(s) => println!(
                    "worker {}: owns {} nodes ({}), {} resident, {} builds",
                    s.owned_part,
                    s.owned_nodes,
                    human_bytes(s.owned_bytes),
                    human_bytes(s.resident_bytes),
                    s.builds
                ),
                Err(e) => println!("worker {w}: UNREACHABLE ({e})"),
            }
        }
        if let Some(report) = cw.cluster_report() {
            println!(
                "wire: {} shuffled over {} messages",
                human_bytes(report.shuffle_bytes),
                report.shuffle_records
            );
        }
    }
    Ok(())
}

fn load_engine(flags: &Flags) -> Result<CloudWalker, String> {
    let cfg = sim_config(flags)?;
    // `--store <dir>` serves straight from a mapped shard store: no
    // graph file, no index file, no resident CSR — the directory is the
    // index. Plain opens run on the mapped engine; `--mode distributed`
    // has each worker map its own shard of the same directory.
    if let Some(dir) = flags.get("store") {
        return match flags.get("mode").map(|s| s.as_str()) {
            None | Some("mapped") => CloudWalker::open_store(dir, cfg),
            Some("distributed") => {
                let ExecMode::Distributed { workers } = exec_mode(flags)? else {
                    unreachable!("mode `distributed` parses to Distributed");
                };
                CloudWalker::open_store_distributed(dir, cfg, &workers)
            }
            Some(other) => {
                return Err(format!(
                    "--store serves the mapped substrate (or distributed workers); \
                     `--mode {other}` needs --graph/--index instead"
                ))
            }
        }
        .map_err(|e| e.to_string());
    }
    let graph = Arc::new(load_graph(get(flags, "graph")?)?);
    let index = persist::load_index(get(flags, "index")?).map_err(|e| e.to_string())?;
    let mode = exec_mode(flags)?;
    CloudWalker::from_index_with_mode(graph, cfg, index, mode).map_err(|e| e.to_string())
}

/// Writes a graph + diagonal index as an out-of-core shard store: one
/// mmap-ready `PASCOSH1` file per shard, diagonal slices included, so
/// later commands serve it with `--store <dir>` — no graph file, no
/// index file, O(1) reopen. Reuses a persisted `--index` when given;
/// otherwise builds one first (same flags as `pasco index`).
fn cmd_save_store(flags: &Flags) -> Result<(), String> {
    let graph = Arc::new(load_graph(get(flags, "graph")?)?);
    let out = get(flags, "out")?;
    let parts: u32 = get_num(flags, "parts", 1)?;
    if parts == 0 {
        return Err("--parts must be positive".into());
    }
    let cfg = sim_config(flags)?;
    let t0 = Instant::now();
    let cw = match flags.get("index") {
        Some(path) => {
            let index = persist::load_index(path).map_err(|e| e.to_string())?;
            CloudWalker::from_index_with_mode(graph, cfg, index, ExecMode::Local)
                .map_err(|e| e.to_string())?
        }
        None => CloudWalker::build(graph, cfg, ExecMode::Local).map_err(|e| e.to_string())?,
    };
    cw.save_store(out, parts).map_err(|e| e.to_string())?;
    let bytes: u64 = std::fs::read_dir(out)
        .map_err(|e| format!("{out}: {e}"))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    println!(
        "saved {} nodes as {parts} shard(s) in {:.2?} ({}); serve with --store {out}",
        cw.node_count(),
        t0.elapsed(),
        human_bytes(bytes)
    );
    Ok(())
}

/// Executes one request through the typed front door; a `QueryError`
/// (out-of-range node, bad k, …) becomes the CLI's error string.
fn execute(svc: &dyn QueryService, req: QueryRequest) -> Result<QueryResponse, String> {
    svc.execute(req).map_err(|e| e.to_string())
}

fn cmd_sp(flags: &Flags) -> Result<(), String> {
    let cw = load_engine(flags)?;
    let i: u32 = get_num(flags, "i", u32::MAX)?;
    let j: u32 = get_num(flags, "j", u32::MAX)?;
    if i == u32::MAX || j == u32::MAX {
        return Err("sp needs --i and --j".into());
    }
    let t0 = Instant::now();
    let QueryResponse::Score(s) = execute(&cw, QueryRequest::SinglePair { i, j })? else {
        unreachable!("SinglePair answers with Score");
    };
    println!("s({i}, {j}) = {s:.6}   [{:?}]", t0.elapsed());
    Ok(())
}

fn cmd_ss(flags: &Flags) -> Result<(), String> {
    let cw = load_engine(flags)?;
    let i: u32 = get_num(flags, "i", u32::MAX)?;
    if i == u32::MAX {
        return Err("ss needs --i".into());
    }
    let top: usize = get_num(flags, "top", 10)?;
    if top == 0 {
        // Same typed error for both estimators (the push path would
        // otherwise run a full query just to rank nothing).
        return Err(pasco::simrank::QueryError::InvalidK { k: 0 }.to_string());
    }
    let t0 = Instant::now();
    let ranked = match flags.get("estimator").map(|s| s.as_str()).unwrap_or("walk") {
        "walk" => {
            let resp = execute(&cw, QueryRequest::SingleSourceTopK { i, k: top as u64 })?;
            let QueryResponse::Ranked(ranked) = resp else {
                unreachable!("SingleSourceTopK answers with Ranked");
            };
            ranked
        }
        "push" => {
            let resp = execute(&cw, QueryRequest::SingleSourcePush { i })?;
            let QueryResponse::Scores(scores) = resp else {
                unreachable!("SingleSourcePush answers with Scores");
            };
            metrics::top_k(&scores, top, Some(i))
        }
        other => return Err(format!("unknown estimator `{other}` (walk|push)")),
    };
    let latency = t0.elapsed();
    println!("top-{top} similar to {i}   [{latency:?}]");
    for (node, s) in ranked {
        println!("  {node:>10}  {s:.6}");
    }
    Ok(())
}

fn cmd_topk(flags: &Flags) -> Result<(), String> {
    let cw = load_engine(flags)?;
    let i: u32 = get_num(flags, "i", u32::MAX)?;
    if i == u32::MAX {
        return Err("topk needs --i".into());
    }
    let k: u64 = get_num(flags, "k", 10)?;
    let QueryResponse::Ranked(ranked) = execute(&cw, QueryRequest::SingleSourceTopK { i, k })?
    else {
        unreachable!("SingleSourceTopK answers with Ranked");
    };
    // Machine-readable: one `node<TAB>score` line per neighbour.
    for (node, s) in ranked {
        println!("{node}\t{s:.6}");
    }
    Ok(())
}

fn cmd_pairs(flags: &Flags) -> Result<(), String> {
    let cw = Arc::new(load_engine(flags)?);
    let nodes: Vec<u32> = get(flags, "nodes")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("--nodes: cannot parse `{s}`")))
        .collect::<Result<_, _>>()?;
    let cache: usize = get_num(flags, "cache", 1024)?;
    if cache == 0 {
        return Err("--cache must be positive".into());
    }
    let session = QuerySession::new(Arc::clone(&cw), cache);
    let t0 = Instant::now();
    let req = QueryRequest::PairsMatrix { rows: nodes.clone(), cols: nodes.clone() };
    let QueryResponse::Matrix(m) = execute(&session, req)? else {
        unreachable!("PairsMatrix answers with Matrix");
    };
    let latency = t0.elapsed();
    let stats = session.cache_stats();
    println!(
        "{}x{} similarity matrix   [{latency:?}, {} cohorts simulated, {} cache hits]",
        nodes.len(),
        nodes.len(),
        stats.misses,
        stats.hits
    );
    print!("{:>10}", "");
    for j in &nodes {
        print!(" {j:>8}");
    }
    println!();
    for (r, &i) in nodes.iter().enumerate() {
        print!("{i:>10}");
        for v in &m[r] {
            print!(" {v:>8.5}");
        }
        println!();
    }
    Ok(())
}

/// Boots the network front door: the engine (any substrate) wrapped in a
/// caching `QuerySession`, served by `PascoServer` until a client sends
/// the shutdown frame.
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use std::io::Write as _;
    let cw = Arc::new(load_engine(flags)?);
    let addr = get(flags, "addr")?;
    let cache: usize = get_num(flags, "cache", 1024)?;
    if cache == 0 {
        return Err("--cache must be positive".into());
    }
    let mut session_cfg = SessionConfig::new(cache);
    // `--workers` means the execution pool size — except under
    // `--mode distributed`, where it is the worker address list and the
    // pool size moves to `--pool`.
    let pool_flag = match exec_mode(flags)? {
        ExecMode::Distributed { .. } => "pool",
        _ => "workers",
    };
    let workers: usize = get_num(flags, pool_flag, ServerConfig::default().workers)?;
    if workers == 0 {
        return Err(format!("--{pool_flag} must be positive"));
    }
    if flags.contains_key("cache-ttl-secs") {
        let secs: u64 = get_num(flags, "cache-ttl-secs", 0)?;
        session_cfg = session_cfg.with_ttl(std::time::Duration::from_secs(secs));
    }
    if flags.contains_key("cache-bytes") {
        session_cfg = session_cfg.with_max_bytes(get_num(flags, "cache-bytes", 0)?);
    }
    let session = Arc::new(QuerySession::with_config(Arc::clone(&cw), session_cfg));

    let defaults = ServerConfig::default();
    let max_conns: usize = get_num(flags, "max-conns", defaults.max_conns)?;
    if max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    let io_timeout_secs: u64 = get_num(flags, "io-timeout", defaults.io_timeout.as_secs())?;
    if io_timeout_secs == 0 {
        return Err("--io-timeout must be positive".into());
    }
    let server_cfg = ServerConfig {
        workers,
        max_frame_bytes: get_num(flags, "max-frame", defaults.max_frame_bytes)?,
        max_conns,
        io_timeout: std::time::Duration::from_secs(io_timeout_secs),
    };
    let server = PascoServer::bind(addr, session as Arc<dyn QueryService>, server_cfg)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "listening on {} ({} engine, {} nodes, cohort cache {cache})",
        server.local_addr(),
        cw.mode_name(),
        cw.node_count()
    );
    // The line above is how scripts discover an ephemeral port: make sure
    // it is on the wire even when stdout is a pipe.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.run().map_err(|e| e.to_string())?;
    println!("drained, shutting down");
    Ok(())
}

/// A network client for a running `pasco serve`: one typed query (or the
/// shutdown frame) over the envelope protocol.
fn cmd_query(flags: &Flags) -> Result<(), String> {
    let addr = get(flags, "connect")?;
    let mut client = PascoClient::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    match get(flags, "kind")? {
        "sp" => {
            let i: u32 = get_num(flags, "i", u32::MAX)?;
            let j: u32 = get_num(flags, "j", u32::MAX)?;
            if i == u32::MAX || j == u32::MAX {
                return Err("--kind sp needs --i and --j".into());
            }
            // Unlike the in-process commands, the response variant here
            // is network input: a nonconforming server is a clean error,
            // not a panic.
            match client.query(QueryRequest::SinglePair { i, j }).map_err(|e| e.to_string())? {
                QueryResponse::Score(s) => println!("s({i}, {j}) = {s:.6}"),
                other => return Err(format!("server answered SinglePair with {other:?}")),
            }
        }
        "ss" => {
            let i: u32 = get_num(flags, "i", u32::MAX)?;
            if i == u32::MAX {
                return Err("--kind ss needs --i".into());
            }
            let top: usize = get_num(flags, "top", 10)?;
            match client.query(QueryRequest::SingleSource { i }).map_err(|e| e.to_string())? {
                QueryResponse::Scores(scores) => {
                    println!("top-{top} similar to {i}");
                    for (node, s) in metrics::top_k(&scores, top, Some(i)) {
                        println!("  {node:>10}  {s:.6}");
                    }
                }
                other => return Err(format!("server answered SingleSource with {other:?}")),
            }
        }
        "topk" => {
            let i: u32 = get_num(flags, "i", u32::MAX)?;
            if i == u32::MAX {
                return Err("--kind topk needs --i".into());
            }
            let k: u64 = get_num(flags, "k", 10)?;
            match client
                .query(QueryRequest::SingleSourceTopK { i, k })
                .map_err(|e| e.to_string())?
            {
                // Same TSV as `pasco topk`: serving over the wire is
                // byte-identical to serving in process.
                QueryResponse::Ranked(ranked) => {
                    for (node, s) in ranked {
                        println!("{node}\t{s:.6}");
                    }
                }
                other => return Err(format!("server answered SingleSourceTopK with {other:?}")),
            }
        }
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server drained");
        }
        other => return Err(format!("unknown query kind `{other}` (sp|ss|topk|shutdown)")),
    }
    Ok(())
}

/// Boots a SimRank worker process: one partition owner of the
/// distributed substrate, serving worker-control frames until a
/// shutdown frame drains it.
fn cmd_worker(flags: &Flags) -> Result<(), String> {
    use std::io::Write as _;
    let addr = get(flags, "addr")?;
    let defaults = WorkerConfig::default();
    let cfg = WorkerConfig {
        max_frame_bytes: get_num(flags, "max-frame", defaults.max_frame_bytes)?,
        ..defaults
    };
    let worker = PascoWorker::bind(addr, cfg).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("worker listening on {}", worker.local_addr());
    // Scripts discover an ephemeral port from the line above: flush it
    // even when stdout is a pipe.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    worker.run().map_err(|e| e.to_string())?;
    println!("worker drained, shutting down");
    Ok(())
}

fn cmd_convert(flags: &Flags) -> Result<(), String> {
    let input = get(flags, "in")?;
    let output = get(flags, "out")?;
    let graph = load_graph(input)?;
    if output.ends_with(".txt") || output.ends_with(".el") {
        io::write_edge_list(&graph, output).map_err(|e| e.to_string())?;
    } else {
        io::write_binary(&graph, output).map_err(|e| e.to_string())?;
    }
    println!("{input} -> {output} ({} nodes, {} edges)", graph.node_count(), graph.edge_count());
    Ok(())
}
