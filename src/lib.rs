#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # PASCO — *Walking in the Cloud: Parallel SimRank at Scale*
//!
//! A from-scratch Rust reproduction of the **CloudWalker** system
//! (Li, Fang, Liu, Cheng, Cheng, Lui — SoCC'15 / PVLDB'16): scalable SimRank
//! via a Monte-Carlo-estimated diagonal correction matrix, a parallel Jacobi
//! solve, and constant-time Monte-Carlo query engines, executed either on a
//! single shared-memory pool or on a simulated Spark-like cluster in both
//! *Broadcasting* and *RDD* modes.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `pasco-graph` | CSR graphs, generators, paper dataset stand-ins, I/O |
//! | [`mc`] | `pasco-mc` | deterministic RNGs, reverse/forward random-walk engines |
//! | [`solver`] | `pasco-solver` | sparse vectors, parallel Jacobi / Gauss-Seidel |
//! | [`cluster`] | `pasco-cluster` | Spark-like runtime: broadcast, DistVec, shuffles |
//! | [`simrank`] | `pasco-simrank` | CloudWalker indexing + MCSP/MCSS/MCAP queries, exact SimRank |
//! | [`server`] | `pasco-server` | TCP front door: envelope protocol server + blocking client |
//! | [`worker`] | `pasco-worker` | SimRank worker process: the distributed substrate's RPC half |
//! | [`baselines`] | `pasco-baselines` | FMT (Fogaras-Racz) and LIN (Maehara) competitors |
//!
//! ## Quickstart
//!
//! ```
//! use pasco::simrank::{CloudWalker, SimRankConfig, ExecMode};
//! use pasco::graph::generators;
//!
//! // A small scale-free graph.
//! let g = generators::barabasi_albert(500, 4, 42);
//! // Build the offline index (estimates the diagonal correction matrix D).
//! let cfg = SimRankConfig::default_paper().with_seed(7);
//! let cw = CloudWalker::build(g.into(), cfg, ExecMode::Local).unwrap();
//! // Online queries.
//! let s = cw.single_pair(3, 4);
//! assert!((0.0..=1.0).contains(&s));
//! let scores = cw.single_source(3);
//! assert_eq!(scores.len(), 500);
//! ```

pub use pasco_baselines as baselines;
pub use pasco_cluster as cluster;
pub use pasco_graph as graph;
pub use pasco_mc as mc;
pub use pasco_server as server;
pub use pasco_simrank as simrank;
pub use pasco_solver as solver;
pub use pasco_worker as worker;
